#include "dnn/zoo.hh"

#include <cctype>
#include <string>

#include "core/logging.hh"

namespace sd::dnn {

namespace {

/** Append the classic 4096-4096-N classifier head. */
LayerId
classifierHead(NetworkBuilder &b, LayerId in, int fc1, int fc2, int classes)
{
    LayerId f1 = b.fc("fc6", in, fc1);
    LayerId f2 = b.fc("fc7", f1, fc2);
    return b.fc("fc8", f2, classes, Activation::None);
}

} // namespace

Network
makeAlexNet()
{
    NetworkBuilder b("AlexNet", 3, 227, 227);
    LayerId c1 = b.conv("conv1", b.input(), 96, 11, 4, 0);
    LayerId p1 = b.maxPool("pool1", c1, 3, 2);
    LayerId c2 = b.conv("conv2", p1, 256, 5, 1, 2, 2);
    LayerId p2 = b.maxPool("pool2", c2, 3, 2);
    LayerId c3 = b.conv("conv3", p2, 384, 3, 1, 1);
    LayerId c4 = b.conv("conv4", c3, 384, 3, 1, 1, 2);
    LayerId c5 = b.conv("conv5", c4, 256, 3, 1, 1, 2);
    LayerId p5 = b.maxPool("pool5", c5, 3, 2);
    classifierHead(b, p5, 4096, 4096, 1000);
    return b.build();
}

Network
makeZF()
{
    NetworkBuilder b("ZF", 3, 224, 224);
    LayerId c1 = b.conv("conv1", b.input(), 96, 7, 2, 1);
    LayerId p1 = b.maxPool("pool1", c1, 3, 2, 1);
    LayerId c2 = b.conv("conv2", p1, 256, 5, 2, 0);
    LayerId p2 = b.maxPool("pool2", c2, 3, 2, 1);
    LayerId c3 = b.conv("conv3", p2, 384, 3, 1, 1);
    LayerId c4 = b.conv("conv4", c3, 384, 3, 1, 1);
    LayerId c5 = b.conv("conv5", c4, 256, 3, 1, 1);
    LayerId p5 = b.maxPool("pool5", c5, 3, 2);
    classifierHead(b, p5, 4096, 4096, 1000);
    return b.build();
}

Network
makeCnnS()
{
    // Chatfield et al., "Return of the Devil in the Details", CNN-S.
    NetworkBuilder b("CNN-S", 3, 224, 224);
    LayerId c1 = b.conv("conv1", b.input(), 96, 7, 2, 0);
    LayerId p1 = b.maxPool("pool1", c1, 3, 3);
    LayerId c2 = b.conv("conv2", p1, 256, 5, 1, 0);
    LayerId p2 = b.maxPool("pool2", c2, 2, 2);
    LayerId c3 = b.conv("conv3", p2, 512, 3, 1, 1);
    LayerId c4 = b.conv("conv4", c3, 512, 3, 1, 1);
    LayerId c5 = b.conv("conv5", c4, 512, 3, 1, 1);
    LayerId p5 = b.maxPool("pool5", c5, 3, 3);
    classifierHead(b, p5, 4096, 4096, 1000);
    return b.build();
}

Network
makeOverFeatFast()
{
    // Sermanet et al., OverFeat fast model (231x231 input).
    NetworkBuilder b("OverFeat-Fast", 3, 231, 231);
    LayerId c1 = b.conv("conv1", b.input(), 96, 11, 4, 0);
    LayerId p1 = b.maxPool("pool1", c1, 2, 2);
    LayerId c2 = b.conv("conv2", p1, 256, 5, 1, 0);
    LayerId p2 = b.maxPool("pool2", c2, 2, 2);
    LayerId c3 = b.conv("conv3", p2, 512, 3, 1, 1);
    LayerId c4 = b.conv("conv4", c3, 1024, 3, 1, 1);
    LayerId c5 = b.conv("conv5", c4, 1024, 3, 1, 1);
    LayerId p5 = b.maxPool("pool5", c5, 2, 2);
    classifierHead(b, p5, 3072, 4096, 1000);
    return b.build();
}

Network
makeOverFeatAccurate()
{
    // OverFeat accurate model (221x221 input, 6 CONV layers).
    NetworkBuilder b("OverFeat-Acc", 3, 221, 221);
    LayerId c1 = b.conv("conv1", b.input(), 96, 7, 2, 0);
    LayerId p1 = b.maxPool("pool1", c1, 3, 3);
    LayerId c2 = b.conv("conv2", p1, 256, 7, 1, 0);
    LayerId p2 = b.maxPool("pool2", c2, 2, 2);
    LayerId c3 = b.conv("conv3", p2, 512, 3, 1, 1);
    LayerId c4 = b.conv("conv4", c3, 512, 3, 1, 1);
    LayerId c5 = b.conv("conv5", c4, 1024, 3, 1, 1);
    LayerId c6 = b.conv("conv6", c5, 1024, 3, 1, 1);
    LayerId p6 = b.maxPool("pool6", c6, 3, 3);
    classifierHead(b, p6, 4096, 4096, 1000);
    return b.build();
}

namespace {

/** One GoogLeNet inception module; returns the concat layer id. */
LayerId
inception(NetworkBuilder &b, const std::string &tag, LayerId in, int c1,
          int c3r, int c3, int c5r, int c5, int pp)
{
    LayerId b1 = b.conv(tag + "/1x1", in, c1, 1, 1, 0, 1,
                        Activation::ReLU, tag);
    LayerId r3 = b.conv(tag + "/3x3_reduce", in, c3r, 1, 1, 0, 1,
                        Activation::ReLU, tag);
    LayerId b3 = b.conv(tag + "/3x3", r3, c3, 3, 1, 1, 1,
                        Activation::ReLU, tag);
    LayerId r5 = b.conv(tag + "/5x5_reduce", in, c5r, 1, 1, 0, 1,
                        Activation::ReLU, tag);
    LayerId b5 = b.conv(tag + "/5x5", r5, c5, 5, 1, 2, 1,
                        Activation::ReLU, tag);
    // The pool branch's 3x3 max-pool (stride 1) keeps the spatial size;
    // it is part of the module and not counted as a SAMP layer.
    LayerId rp = b.conv(tag + "/pool_proj", in, pp, 1, 1, 0, 1,
                        Activation::ReLU, tag);
    return b.concat(tag + "/output", {b1, b3, b5, rp}, tag);
}

} // namespace

Network
makeGoogLeNet()
{
    NetworkBuilder b("GoogLenet", 3, 224, 224);
    LayerId c1 = b.conv("conv1", b.input(), 64, 7, 2, 3);
    LayerId p1 = b.maxPool("pool1", c1, 3, 2, 1);
    LayerId c2r = b.conv("conv2_reduce", p1, 64, 1, 1, 0, 1,
                         Activation::ReLU, "conv2");
    LayerId c2 = b.conv("conv2", c2r, 192, 3, 1, 1, 1,
                        Activation::ReLU, "conv2");
    LayerId p2 = b.maxPool("pool2", c2, 3, 2, 1);
    LayerId i3a = inception(b, "3a", p2, 64, 96, 128, 16, 32, 32);
    LayerId i3b = inception(b, "3b", i3a, 128, 128, 192, 32, 96, 64);
    LayerId p3 = b.maxPool("pool3", i3b, 3, 2, 1);
    LayerId i4a = inception(b, "4a", p3, 192, 96, 208, 16, 48, 64);
    LayerId i4b = inception(b, "4b", i4a, 160, 112, 224, 24, 64, 64);
    LayerId i4c = inception(b, "4c", i4b, 128, 128, 256, 24, 64, 64);
    LayerId i4d = inception(b, "4d", i4c, 112, 144, 288, 32, 64, 64);
    LayerId i4e = inception(b, "4e", i4d, 256, 160, 320, 32, 128, 128);
    LayerId p4 = b.maxPool("pool4", i4e, 3, 2, 1);
    LayerId i5a = inception(b, "5a", p4, 256, 160, 320, 32, 128, 128);
    LayerId i5b = inception(b, "5b", i5a, 384, 192, 384, 48, 128, 128);
    LayerId p5 = b.avgPool("pool5", i5b, 7, 1);
    b.fc("fc", p5, 1000, Activation::None);
    return b.build();
}

namespace {

/** A VGG block: @p convs 3x3 convolutions followed by a 2x2 max-pool. */
LayerId
vggBlock(NetworkBuilder &b, LayerId in, int block, int convs, int channels)
{
    LayerId cur = in;
    for (int i = 0; i < convs; ++i) {
        cur = b.conv("conv" + std::to_string(block) + "_" +
                     std::to_string(i + 1), cur, channels, 3, 1, 1);
    }
    return b.maxPool("pool" + std::to_string(block), cur, 2, 2);
}

Network
makeVgg(const std::string &name, const int (&convs)[5])
{
    NetworkBuilder b(name, 3, 224, 224);
    static const int channels[5] = {64, 128, 256, 512, 512};
    LayerId cur = b.input();
    for (int blk = 0; blk < 5; ++blk)
        cur = vggBlock(b, cur, blk + 1, convs[blk], channels[blk]);
    classifierHead(b, cur, 4096, 4096, 1000);
    return b.build();
}

} // namespace

Network
makeVggA()
{
    return makeVgg("VGG-A", {1, 1, 2, 2, 2});
}

Network
makeVggD()
{
    return makeVgg("VGG-D", {2, 2, 3, 3, 3});
}

Network
makeVggE()
{
    return makeVgg("VGG-E", {2, 2, 4, 4, 4});
}

namespace {

/**
 * A ResNet basic block (two 3x3 convs + identity/projection shortcut).
 * The shortcut projection conv is tagged with the block's group so it
 * doesn't inflate the paper-style CONV layer count.
 */
LayerId
basicBlock(NetworkBuilder &b, const std::string &tag, LayerId in,
           int channels, int stride)
{
    // conv1 and the (optional) shortcut projection share a group so the
    // paper-style layer count sees two CONV layers per block.
    LayerId c1 = b.conv(tag + "/conv1", in, channels, 3, stride, 1, 1,
                        Activation::ReLU, tag);
    LayerId c2 = b.conv(tag + "/conv2", c1, channels, 3, 1, 1, 1,
                        Activation::None);
    LayerId shortcut = in;
    if (stride != 1 || b.layerAt(in).outChannels != channels) {
        shortcut = b.conv(tag + "/shortcut", in, channels, 1, stride, 0, 1,
                          Activation::None, tag);
    }
    return b.eltwise(tag + "/add", {c2, shortcut});
}

Network
makeResNet(const std::string &name, const int (&blocks)[4])
{
    NetworkBuilder b(name, 3, 224, 224);
    LayerId cur = b.conv("conv1", b.input(), 64, 7, 2, 3);
    cur = b.maxPool("pool1", cur, 3, 2, 1);
    static const int channels[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        for (int blk = 0; blk < blocks[stage]; ++blk) {
            int stride = (stage > 0 && blk == 0) ? 2 : 1;
            std::string tag = "res" + std::to_string(stage + 2) +
                              std::string(1, static_cast<char>('a' + blk));
            cur = basicBlock(b, tag, cur, channels[stage], stride);
        }
    }
    cur = b.avgPool("pool5", cur, 7, 1);
    b.fc("fc", cur, 1000, Activation::None);
    return b.build();
}

} // namespace

Network
makeResNet18()
{
    return makeResNet("ResNet18", {2, 2, 2, 2});
}

Network
makeResNet34()
{
    return makeResNet("ResNet34", {3, 4, 6, 3});
}

namespace {

Network
makeTiny(const std::string &name, int input_size, int classes,
         bool avg_pool)
{
    NetworkBuilder b(name, 1, input_size, input_size);
    LayerId c1 = b.conv("conv1", b.input(), 4, 3, 1, 1);
    LayerId p1 = avg_pool ? b.avgPool("pool1", c1, 2, 2)
                          : b.maxPool("pool1", c1, 2, 2);
    LayerId c2 = b.conv("conv2", p1, 8, 3, 1, 1);
    LayerId p2 = avg_pool ? b.avgPool("pool2", c2, 2, 2)
                          : b.maxPool("pool2", c2, 2, 2);
    LayerId f1 = b.fc("fc1", p2, 16);
    b.fc("fc2", f1, classes, Activation::None);
    return b.build();
}

} // namespace

Network
makeTinyCnn(int input_size, int classes)
{
    return makeTiny("TinyCNN", input_size, classes, false);
}

Network
makeTinyCnnAvg(int input_size, int classes)
{
    return makeTiny("TinyCNN-avg", input_size, classes, true);
}

Network
makeSingleConv(int in_c, int in_hw, int out_c, int kernel, int stride,
               int pad)
{
    NetworkBuilder b("SingleConv", in_c, in_hw, in_hw);
    b.conv("conv", b.input(), out_c, kernel, stride, pad, 1,
           Activation::None);
    return b.build();
}

const std::vector<ZooEntry> &
benchmarkSuite()
{
    // Figure 16 presentation order.
    static const std::vector<ZooEntry> suite = {
        {"AlexNet", makeAlexNet},
        {"ZF", makeZF},
        {"ResNet18", makeResNet18},
        {"GoogLenet", makeGoogLeNet},
        {"CNN-S", makeCnnS},
        {"OF-Fast", makeOverFeatFast},
        {"ResNet34", makeResNet34},
        {"OF-Acc", makeOverFeatAccurate},
        {"VGG-A", makeVggA},
        {"VGG-D", makeVggD},
        {"VGG-E", makeVggE},
    };
    return suite;
}

Network
makeByName(const std::string &name)
{
    auto lower = [](std::string s) {
        for (char &c : s)
            c = static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));
        return s;
    };
    const std::string want = lower(name);
    for (const ZooEntry &e : benchmarkSuite()) {
        if (lower(e.name) == want)
            return e.make();
    }
    fatal("unknown benchmark network: ", name);
}

} // namespace sd::dnn
