#include "dnn/tensor.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace sd::dnn {

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape))
{
    if (shape_.empty() || shape_.size() > 4)
        panic("Tensor: rank must be 1..4, got ", shape_.size());
    std::size_t n = 1;
    for (std::size_t d : shape_) {
        if (d == 0)
            panic("Tensor: zero-sized dimension");
        n *= d;
    }
    data_.assign(n, 0.0f);
}

Tensor
Tensor::full(std::vector<std::size_t> shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::uniform(std::vector<std::size_t> shape, Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

Tensor
Tensor::stack(const std::vector<Tensor> &items)
{
    if (items.empty())
        panic("Tensor::stack: empty batch");
    const Tensor &first = items.front();
    if (first.rank() > 3)
        panic("Tensor::stack: items must be rank <= 3");
    std::vector<std::size_t> shape = {items.size()};
    shape.insert(shape.end(), first.shape_.begin(), first.shape_.end());
    Tensor out(std::move(shape));
    for (std::size_t n = 0; n < items.size(); ++n) {
        if (items[n].shape_ != first.shape_)
            panic("Tensor::stack: item ", n, " shape mismatch");
        std::copy(items[n].data_.begin(), items[n].data_.end(),
                  out.data_.begin() +
                      static_cast<std::ptrdiff_t>(n * first.size()));
    }
    return out;
}

Tensor
Tensor::imageAt(std::size_t n) const
{
    if (n >= batch())
        panic("Tensor::imageAt: image ", n, " out of batch ", batch());
    std::vector<std::size_t> shape =
        rank() == 4 ? std::vector<std::size_t>(shape_.begin() + 1,
                                               shape_.end())
                    : shape_;
    Tensor out(std::move(shape));
    const std::size_t elems = imageElems();
    std::copy(data_.begin() + static_cast<std::ptrdiff_t>(n * elems),
              data_.begin() + static_cast<std::ptrdiff_t>((n + 1) * elems),
              out.data_.begin());
    return out;
}

std::size_t
Tensor::flatIndex(std::size_t i0, std::size_t i1, std::size_t i2,
                  std::size_t i3, std::size_t used_rank) const
{
    if (used_rank != shape_.size()) {
        panic("Tensor: indexed with ", used_rank, " indices but rank is ",
              shape_.size());
    }
    std::size_t idx[4] = {i0, i1, i2, i3};
    std::size_t flat = 0;
    for (std::size_t d = 0; d < used_rank; ++d) {
        if (idx[d] >= shape_[d])
            panic("Tensor: index ", idx[d], " out of bound ", shape_[d]);
        flat = flat * shape_[d] + idx[d];
    }
    return flat;
}

float &Tensor::at(std::size_t i0)
{ return data_[flatIndex(i0, 0, 0, 0, 1)]; }
float &Tensor::at(std::size_t i0, std::size_t i1)
{ return data_[flatIndex(i0, i1, 0, 0, 2)]; }
float &Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2)
{ return data_[flatIndex(i0, i1, i2, 0, 3)]; }
float &Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2,
                  std::size_t i3)
{ return data_[flatIndex(i0, i1, i2, i3, 4)]; }

float Tensor::at(std::size_t i0) const
{ return data_[flatIndex(i0, 0, 0, 0, 1)]; }
float Tensor::at(std::size_t i0, std::size_t i1) const
{ return data_[flatIndex(i0, i1, 0, 0, 2)]; }
float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2) const
{ return data_[flatIndex(i0, i1, i2, 0, 3)]; }
float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2,
                 std::size_t i3) const
{ return data_[flatIndex(i0, i1, i2, i3, 4)]; }

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Tensor::accumulate(const Tensor &other)
{
    if (other.shape_ != shape_)
        panic("Tensor::accumulate: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
Tensor::scale(float factor)
{
    for (float &v : data_)
        v *= factor;
}

float
Tensor::maxAbs() const
{
    float m = 0.0f;
    for (float v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

float
Tensor::maxAbsDiff(const Tensor &other) const
{
    if (other.shape_ != shape_)
        panic("Tensor::maxAbsDiff: shape mismatch");
    float m = 0.0f;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::fabs(data_[i] - other.data_[i]));
    return m;
}

} // namespace sd::dnn
