#include "dnn/tensor.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace sd::dnn {

std::size_t
Tensor::checkedVolume(const std::vector<std::size_t> &shape)
{
    if (shape.empty() || shape.size() > 4)
        panic("Tensor: rank must be 1..4, got ", shape.size());
    std::size_t n = 1;
    for (std::size_t d : shape) {
        if (d == 0)
            panic("Tensor: zero-sized dimension");
        n *= d;
    }
    return n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape))
{
    elems_ = checkedVolume(shape_);
    data_.assign(elems_, 0.0f);
    ptr_ = data_.data();
}

Tensor::Tensor(const Tensor &other)
    : shape_(other.shape_), elems_(other.elems_)
{
    // Copying materializes views: the copy always owns its storage.
    if (elems_ > 0)
        data_.assign(other.ptr_, other.ptr_ + elems_);
    ptr_ = data_.data();
}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this == &other)
        return *this;
    shape_ = other.shape_;
    elems_ = other.elems_;
    if (elems_ > 0)
        data_.assign(other.ptr_, other.ptr_ + elems_);
    else
        data_.clear();
    ptr_ = data_.data();
    view_ = false;
    return *this;
}

Tensor::Tensor(Tensor &&other) noexcept
    : shape_(std::move(other.shape_)), data_(std::move(other.data_)),
      ptr_(other.ptr_), elems_(other.elems_), view_(other.view_)
{
    // A moved vector keeps its heap block, so ptr_ stays valid for
    // owning tensors; for views it points at the external storage.
    other.shape_.clear();
    other.ptr_ = nullptr;
    other.elems_ = 0;
    other.view_ = false;
}

Tensor &
Tensor::operator=(Tensor &&other) noexcept
{
    if (this == &other)
        return *this;
    shape_ = std::move(other.shape_);
    data_ = std::move(other.data_);
    ptr_ = other.ptr_;
    elems_ = other.elems_;
    view_ = other.view_;
    other.shape_.clear();
    other.ptr_ = nullptr;
    other.elems_ = 0;
    other.view_ = false;
    return *this;
}

Tensor
Tensor::full(std::vector<std::size_t> shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::uniform(std::vector<std::size_t> shape, Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

Tensor
Tensor::view(std::vector<std::size_t> shape, float *storage)
{
    if (storage == nullptr)
        panic("Tensor::view: null storage");
    Tensor t;
    t.shape_ = std::move(shape);
    t.elems_ = checkedVolume(t.shape_);
    t.ptr_ = storage;
    t.view_ = true;
    return t;
}

Tensor
Tensor::stack(const std::vector<Tensor> &items)
{
    if (items.empty())
        panic("Tensor::stack: empty batch");
    const Tensor &first = items.front();
    if (first.rank() > 3)
        panic("Tensor::stack: items must be rank <= 3");
    std::vector<std::size_t> shape = {items.size()};
    shape.insert(shape.end(), first.shape_.begin(), first.shape_.end());
    Tensor out(std::move(shape));
    for (std::size_t n = 0; n < items.size(); ++n) {
        if (items[n].shape_ != first.shape_)
            panic("Tensor::stack: item ", n, " shape mismatch");
        std::copy(items[n].data(), items[n].data() + items[n].size(),
                  out.data() + n * first.size());
    }
    return out;
}

Tensor
Tensor::imageAt(std::size_t n) const
{
    if (n >= batch())
        panic("Tensor::imageAt: image ", n, " out of batch ", batch());
    std::vector<std::size_t> shape =
        rank() == 4 ? std::vector<std::size_t>(shape_.begin() + 1,
                                               shape_.end())
                    : shape_;
    Tensor out(std::move(shape));
    const std::size_t elems = imageElems();
    std::copy(ptr_ + n * elems, ptr_ + (n + 1) * elems, out.data());
    return out;
}

std::size_t
Tensor::flatIndex(std::size_t i0, std::size_t i1, std::size_t i2,
                  std::size_t i3, std::size_t used_rank) const
{
    if (used_rank != shape_.size()) {
        panic("Tensor: indexed with ", used_rank, " indices but rank is ",
              shape_.size());
    }
    std::size_t idx[4] = {i0, i1, i2, i3};
    std::size_t flat = 0;
    for (std::size_t d = 0; d < used_rank; ++d) {
        if (idx[d] >= shape_[d])
            panic("Tensor: index ", idx[d], " out of bound ", shape_[d]);
        flat = flat * shape_[d] + idx[d];
    }
    return flat;
}

float &Tensor::at(std::size_t i0)
{ return ptr_[flatIndex(i0, 0, 0, 0, 1)]; }
float &Tensor::at(std::size_t i0, std::size_t i1)
{ return ptr_[flatIndex(i0, i1, 0, 0, 2)]; }
float &Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2)
{ return ptr_[flatIndex(i0, i1, i2, 0, 3)]; }
float &Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2,
                  std::size_t i3)
{ return ptr_[flatIndex(i0, i1, i2, i3, 4)]; }

float Tensor::at(std::size_t i0) const
{ return ptr_[flatIndex(i0, 0, 0, 0, 1)]; }
float Tensor::at(std::size_t i0, std::size_t i1) const
{ return ptr_[flatIndex(i0, i1, 0, 0, 2)]; }
float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2) const
{ return ptr_[flatIndex(i0, i1, i2, 0, 3)]; }
float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2,
                 std::size_t i3) const
{ return ptr_[flatIndex(i0, i1, i2, i3, 4)]; }

void
Tensor::fill(float value)
{
    std::fill(ptr_, ptr_ + elems_, value);
}

void
Tensor::accumulate(const Tensor &other)
{
    if (other.shape_ != shape_)
        panic("Tensor::accumulate: shape mismatch");
    for (std::size_t i = 0; i < elems_; ++i)
        ptr_[i] += other.ptr_[i];
}

void
Tensor::scale(float factor)
{
    for (std::size_t i = 0; i < elems_; ++i)
        ptr_[i] *= factor;
}

float
Tensor::maxAbs() const
{
    float m = 0.0f;
    for (std::size_t i = 0; i < elems_; ++i)
        m = std::max(m, std::fabs(ptr_[i]));
    return m;
}

float
Tensor::maxAbsDiff(const Tensor &other) const
{
    if (other.shape_ != shape_)
        panic("Tensor::maxAbsDiff: shape mismatch");
    float m = 0.0f;
    for (std::size_t i = 0; i < elems_; ++i)
        m = std::max(m, std::fabs(ptr_[i] - other.ptr_[i]));
    return m;
}

} // namespace sd::dnn
