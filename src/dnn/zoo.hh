/**
 * @file
 * Builders for the paper's 11-network benchmark suite (Figure 15) plus a
 * few small networks used by tests and examples. All topologies follow
 * the original publications; EXPERIMENTS.md records where the resulting
 * neuron/weight/connection counts land relative to Figure 15.
 */

#ifndef SCALEDEEP_DNN_ZOO_HH
#define SCALEDEEP_DNN_ZOO_HH

#include <functional>
#include <string>
#include <vector>

#include "dnn/network.hh"

namespace sd::dnn {

Network makeAlexNet();
Network makeZF();
Network makeCnnS();
Network makeOverFeatFast();
Network makeOverFeatAccurate();
Network makeGoogLeNet();
Network makeVggA();
Network makeVggD();
Network makeVggE();
Network makeResNet18();
Network makeResNet34();

/** A tiny LeNet-style CNN for functional-simulation tests and examples. */
Network makeTinyCnn(int input_size = 16, int classes = 4);

/**
 * The average-pooling variant of the tiny CNN, used by the functional
 * trainer (max-pool BP needs argmax state the ISA does not carry).
 */
Network makeTinyCnnAvg(int input_size = 16, int classes = 4);

/** A single-conv-layer network with configurable shape (property tests). */
Network makeSingleConv(int in_c, int in_hw, int out_c, int kernel,
                       int stride, int pad);

/** The benchmark suite in the paper's Figure 15/16 order. */
struct ZooEntry
{
    std::string name;                   ///< paper's display name
    std::function<Network()> make;
};

const std::vector<ZooEntry> &benchmarkSuite();

/** Build a suite network by display name; fatal() if unknown. */
Network makeByName(const std::string &name);

} // namespace sd::dnn

#endif // SCALEDEEP_DNN_ZOO_HH
