/**
 * @file
 * Minimal dense float tensor in CHW / NCHW layout. This is the data
 * substrate for the reference DNN engine (the golden model against which
 * the functional simulator is validated) and for the training examples.
 */

#ifndef SCALEDEEP_DNN_TENSOR_HH
#define SCALEDEEP_DNN_TENSOR_HH

#include <cstddef>
#include <vector>

#include "core/random.hh"

namespace sd::dnn {

/**
 * A dense row-major float tensor with up to 4 dimensions.
 *
 * Dimensions are stored outermost-first (e.g. {N, C, H, W}); trailing
 * dimensions of size 1 may be omitted. Storage is always contiguous.
 *
 * A tensor either owns its storage or is a *view* over external
 * storage (Tensor::view — the memory planner binds activation views
 * into its arena this way). Views have value semantics on copy: any
 * copy materializes into owning storage, so `Tensor t = view;` is a
 * stable snapshot. Moves preserve view-ness. The viewed storage must
 * outlive the view.
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::vector<std::size_t> shape);

    Tensor(const Tensor &other);
    Tensor &operator=(const Tensor &other);
    Tensor(Tensor &&other) noexcept;
    Tensor &operator=(Tensor &&other) noexcept;
    ~Tensor() = default;

    static Tensor zeros(std::vector<std::size_t> shape)
    { return Tensor(std::move(shape)); }

    /** Filled with a constant. */
    static Tensor full(std::vector<std::size_t> shape, float value);

    /** Uniform random in [lo, hi) with a deterministic RNG. */
    static Tensor uniform(std::vector<std::size_t> shape, Rng &rng,
                          float lo = -1.0f, float hi = 1.0f);

    /**
     * Non-owning view of @p shape over @p storage (which must hold the
     * shape's volume and outlive the view). The contents are whatever
     * the storage holds — not zero-filled.
     */
    static Tensor view(std::vector<std::size_t> shape, float *storage);

    /**
     * Stack equal-shaped rank-<=3 tensors along a new leading batch
     * axis: stack({CHW...}) is NCHW with N = items.size().
     */
    static Tensor stack(const std::vector<Tensor> &items);

    const std::vector<std::size_t> &shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }
    std::size_t dim(std::size_t i) const { return shape_.at(i); }
    std::size_t size() const { return elems_; }

    /** True for a non-owning view over external storage. */
    bool isView() const { return view_; }

    /** Bytes of owned heap storage — capacity, not logical size, so a
     * shrunk-but-not-released vector still accounts. Views report 0
     * (the arena owner accounts the storage). */
    std::size_t capacityBytes() const
    { return data_.capacity() * sizeof(float); }

    /**
     * Batch count under the NCHW convention: the leading dimension for
     * rank-4 tensors, 1 otherwise (rank <= 3 is one CHW image).
     */
    std::size_t batch() const
    { return shape_.size() == 4 ? shape_[0] : 1; }

    /** Elements per image: size() / batch(). */
    std::size_t imageElems() const { return elems_ / batch(); }

    /** Copy of image @p n as a rank-3 (or scalar-shape) tensor. */
    Tensor imageAt(std::size_t n) const;

    float *data() { return ptr_; }
    const float *data() const { return ptr_; }

    float &operator[](std::size_t i) { return ptr_[i]; }
    float operator[](std::size_t i) const { return ptr_[i]; }

    /** Element access by multi-index (bounds-checked via panic). */
    float &at(std::size_t i0);
    float &at(std::size_t i0, std::size_t i1);
    float &at(std::size_t i0, std::size_t i1, std::size_t i2);
    float &at(std::size_t i0, std::size_t i1, std::size_t i2,
              std::size_t i3);
    float at(std::size_t i0) const;
    float at(std::size_t i0, std::size_t i1) const;
    float at(std::size_t i0, std::size_t i1, std::size_t i2) const;
    float at(std::size_t i0, std::size_t i1, std::size_t i2,
             std::size_t i3) const;

    /** Fill all elements with @p value. */
    void fill(float value);

    /** Elementwise accumulate: this += other. Shapes must match. */
    void accumulate(const Tensor &other);

    /** Scale all elements by @p factor. */
    void scale(float factor);

    /** Largest absolute element (0 for an empty tensor). */
    float maxAbs() const;

    /** Largest absolute elementwise difference against @p other. */
    float maxAbsDiff(const Tensor &other) const;

  private:
    static std::size_t checkedVolume(const std::vector<std::size_t> &shape);
    std::size_t flatIndex(std::size_t i0, std::size_t i1, std::size_t i2,
                          std::size_t i3, std::size_t used_rank) const;

    std::vector<std::size_t> shape_;
    std::vector<float> data_;   ///< owning storage; empty for views
    float *ptr_ = nullptr;      ///< element storage (owned or viewed)
    std::size_t elems_ = 0;
    bool view_ = false;
};

} // namespace sd::dnn

#endif // SCALEDEEP_DNN_TENSOR_HH
