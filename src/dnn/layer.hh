/**
 * @file
 * Layer descriptors for the DNN topologies ScaleDeep maps. The paper's
 * taxonomy has three key layer types — CONV, SAMP (pooling) and FC — with
 * the activation function folded into the producing CONV/FC layer. We add
 * Eltwise (residual adds) and Concat (inception joins) so that ResNet and
 * GoogLeNet can be represented as first-class DAGs.
 */

#ifndef SCALEDEEP_DNN_LAYER_HH
#define SCALEDEEP_DNN_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sd::dnn {

/** The kind of computation a layer performs. */
enum class LayerKind { Input, Conv, Samp, Fc, Eltwise, Concat };

/** Non-linear activation applied to a CONV/FC/Eltwise output. */
enum class Activation { None, ReLU, Tanh, Sigmoid };

/** Pooling flavour of a SAMP layer. */
enum class SampKind { Max, Average };

const char *layerKindName(LayerKind kind);
const char *activationName(Activation act);

/** Integer id of a layer within its network. */
using LayerId = int;

/**
 * One layer of a network: user-specified parameters plus shape state
 * computed when the layer is added to a Network.
 *
 * Spatial layers use (channels, height, width); FC layers use flat vectors
 * (outH == outW == 1, outChannels == neuron count).
 */
struct Layer
{
    LayerId id = -1;
    std::string name;
    LayerKind kind = LayerKind::Input;
    std::vector<LayerId> inputs;    ///< producer layer ids

    /**
     * Optional group tag: layers sharing a non-empty group (e.g. an
     * inception module) are counted as one logical layer in paper-style
     * layer counts and are co-allocated by the mapper.
     */
    std::string group;

    // --- CONV / SAMP parameters ---
    int kernelH = 0, kernelW = 0;
    int strideH = 1, strideW = 1;
    int padH = 0, padW = 0;
    int groups = 1;                 ///< grouped convolution factor
    SampKind sampKind = SampKind::Max;

    Activation act = Activation::None;

    // --- computed shape ---
    int inChannels = 0, inH = 0, inW = 0;
    int outChannels = 0, outH = 0, outW = 0;

    /** Number of output neurons (elements of the output feature volume). */
    std::uint64_t outputElems() const
    {
        return static_cast<std::uint64_t>(outChannels) * outH * outW;
    }

    /** Number of input elements consumed per image. */
    std::uint64_t inputElems() const
    {
        return static_cast<std::uint64_t>(inChannels) * inH * inW;
    }

    /** Trainable weight count (0 for SAMP/Eltwise/Concat/Input). */
    std::uint64_t weightCount() const;

    /** Multiply-accumulate count per image ("connections"). */
    std::uint64_t macCount() const;

    bool hasWeights() const { return weightCount() > 0; }
    bool isCompute() const
    { return kind == LayerKind::Conv || kind == LayerKind::Fc; }
};

} // namespace sd::dnn

#endif // SCALEDEEP_DNN_LAYER_HH
