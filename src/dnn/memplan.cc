#include "dnn/memplan.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>

#include "core/logging.hh"
#include "dnn/layer.hh"

namespace sd::dnn {

namespace {

/** Process-global MemPlanMode; -1 = not yet resolved from SD_MEMPLAN. */
std::atomic<int> g_memplan_mode{-1};

} // namespace

const char *
memPlanModeName(MemPlanMode mode)
{
    switch (mode) {
      case MemPlanMode::Off:
        return "off";
      case MemPlanMode::Share:
        return "share";
    }
    return "?";
}

bool
parseMemPlanMode(std::string_view text, MemPlanMode &out)
{
    // Mirrors parseConvAlgo: the whole string must be exactly one
    // canonical name — "Share", " off" and "shared" are rejected.
    for (MemPlanMode m : {MemPlanMode::Off, MemPlanMode::Share}) {
        if (text == memPlanModeName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

MemPlanMode
defaultMemPlanMode()
{
    if (const char *env = std::getenv("SD_MEMPLAN")) {
        MemPlanMode m;
        if (!parseMemPlanMode(env, m))
            fatal("SD_MEMPLAN=", env,
                  " is not a memory-planning mode (valid: off share)");
        return m;
    }
    return MemPlanMode::Off;
}

void
setMemPlanMode(MemPlanMode mode)
{
    g_memplan_mode.store(static_cast<int>(mode),
                         std::memory_order_relaxed);
}

MemPlanMode
memPlanMode()
{
    const int v = g_memplan_mode.load(std::memory_order_relaxed);
    if (v >= 0)
        return static_cast<MemPlanMode>(v);
    // First use: resolve from the environment. A concurrent first use
    // races benignly — defaultMemPlanMode() is deterministic.
    const MemPlanMode d = defaultMemPlanMode();
    g_memplan_mode.store(static_cast<int>(d), std::memory_order_relaxed);
    return d;
}

const char *
passShapeName(PassShape shape)
{
    switch (shape) {
      case PassShape::Forward:
        return "forward";
      case PassShape::ForwardBackward:
        return "forward_backward";
    }
    return "?";
}

std::uint64_t
MemPlan::slotOffsetElems(int slot, std::size_t batch) const
{
    if (slot < 0 || static_cast<std::size_t>(slot) >= slotElems.size())
        panic("MemPlan: slot ", slot, " out of range ",
              slotElems.size());
    const std::uint64_t align = kMemPlanAlignElems;
    std::uint64_t offset = 0;
    for (int s = 0; s < slot; ++s) {
        const std::uint64_t n = slotElems[static_cast<std::size_t>(s)] *
                                batch;
        offset += (n + align - 1) / align * align;
    }
    return offset;
}

std::uint64_t
MemPlan::arenaElems(std::size_t batch) const
{
    if (slotElems.empty())
        return 0;
    const int last = static_cast<int>(slotElems.size()) - 1;
    const std::uint64_t align = kMemPlanAlignElems;
    const std::uint64_t n = slotElems.back() * batch;
    return slotOffsetElems(last, batch) +
           (n + align - 1) / align * align;
}

std::vector<char>
defaultPinnedLayers(const Network &net)
{
    std::vector<char> pinned(net.numLayers(), 0);
    for (const Layer &l : net.layers()) {
        if (l.kind == LayerKind::Input)
            pinned[static_cast<std::size_t>(l.id)] = 1;
    }
    pinned[static_cast<std::size_t>(net.outputLayer().id)] = 1;
    return pinned;
}

MemPlan
planMemory(const Network &net, PassShape shape,
           const std::vector<char> &pinned)
{
    const std::size_t n = net.numLayers();
    if (pinned.size() != n)
        panic("planMemory: pinned flags size ", pinned.size(),
              " != layer count ", n);

    // Tensor ids: activation of layer l is l, error of layer l is n+l.
    const auto act_id = [](LayerId l) {
        return static_cast<std::size_t>(l);
    };
    const auto err_id = [n](LayerId l) {
        return n + static_cast<std::size_t>(l);
    };

    // --- lifetimes: inclusive [first touch, last touch] step range ---
    std::vector<int> birth(2 * n, -1);
    std::vector<int> death(2 * n, -1);
    int step = 0;
    const auto touch = [&](std::size_t tid) {
        if (birth[tid] < 0)
            birth[tid] = step;
        death[tid] = step;
    };

    // Forward steps in topological order: layer l reads its producers'
    // activations and writes (Eltwise: read-modify-writes) its own.
    for (const Layer &l : net.layers()) {
        for (LayerId in : l.inputs)
            touch(act_id(in));
        touch(act_id(l.id));
        ++step;
    }

    if (shape == PassShape::ForwardBackward) {
        // Loss step: softmax reads the output activation and writes
        // the output error.
        const LayerId out = net.outputLayer().id;
        touch(act_id(out));
        touch(err_id(out));
        ++step;

        // Backward steps in reverse topological order, mirroring the
        // per-kind reads/writes of ReferenceEngine::forwardBackward.
        const auto &layers = net.layers();
        for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
            const Layer &l = *it;
            if (l.kind == LayerKind::Input)
                continue;
            touch(err_id(l.id)); // dy read (+ in-place activation grad)
            switch (l.kind) {
              case LayerKind::Conv:
              case LayerKind::Fc:
                touch(act_id(l.id));        // activation-grad reads y
                touch(act_id(l.inputs[0])); // weight-grad reads x
                touch(err_id(l.inputs[0])); // din accumulates
                break;
              case LayerKind::Samp:
                touch(err_id(l.inputs[0])); // argmax scatter / spread
                break;
              case LayerKind::Eltwise:
                touch(act_id(l.id));        // activation-grad reads y
                for (LayerId in : l.inputs)
                    touch(err_id(in));
                break;
              case LayerKind::Concat:
                for (LayerId in : l.inputs)
                    touch(err_id(in));
                break;
              case LayerKind::Input:
                break;
            }
            ++step;
        }
    }

    // --- per-image element count and pinning per tensor ---
    std::vector<std::uint64_t> elems(2 * n, 0);
    std::vector<char> tensor_pinned(2 * n, 0);
    MemPlan plan;
    plan.shape = shape;
    plan.actSlot.assign(n, MemPlan::kPinned);
    plan.errSlot.assign(n, MemPlan::kPinned);
    for (const Layer &l : net.layers()) {
        const std::uint64_t e = l.outputElems();
        elems[act_id(l.id)] = e;
        elems[err_id(l.id)] = e;
        const bool pin = pinned[static_cast<std::size_t>(l.id)] != 0;
        tensor_pinned[act_id(l.id)] = pin;
        tensor_pinned[err_id(l.id)] = pin;
        plan.unplannedElemsPerImage += 2 * e;
        if (pin)
            plan.pinnedElemsPerImage += 2 * e;
    }

    // --- greedy best-fit interval coloring, birth order ---
    std::vector<std::size_t> order;
    order.reserve(2 * n);
    for (std::size_t tid = 0; tid < 2 * n; ++tid) {
        if (!tensor_pinned[tid] && birth[tid] >= 0)
            order.push_back(tid);
    }
    // Ties keep ascending tensor id (stable over the ascending push
    // order above) — the plan must not depend on sort internals.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return birth[a] < birth[b];
                     });

    struct Slot
    {
        std::uint64_t elems;
        int free_at; ///< death step of the last tensor assigned
    };
    std::vector<Slot> slots;
    std::vector<int> slot_of(2 * n, MemPlan::kPinned);
    for (std::size_t tid : order) {
        int best = -1;
        std::uint64_t best_gap =
            std::numeric_limits<std::uint64_t>::max();
        for (std::size_t s = 0; s < slots.size(); ++s) {
            // Strict <: tensors sharing a program step never share a
            // slot (the step reads one while writing the other).
            if (slots[s].free_at >= birth[tid])
                continue;
            const std::uint64_t gap =
                slots[s].elems > elems[tid]
                    ? slots[s].elems - elems[tid]
                    : elems[tid] - slots[s].elems;
            if (gap < best_gap) {
                best_gap = gap;
                best = static_cast<int>(s);
            }
        }
        if (best < 0) {
            best = static_cast<int>(slots.size());
            slots.push_back({elems[tid], death[tid]});
        } else {
            Slot &slot = slots[static_cast<std::size_t>(best)];
            slot.elems = std::max(slot.elems, elems[tid]);
            slot.free_at = death[tid];
        }
        slot_of[tid] = best;
    }

    // --- untouched tensors share one "dead" slot: the engine still
    // binds shape-correct views behind its getters ---
    std::uint64_t dead_elems = 0;
    bool have_dead = false;
    for (std::size_t tid = 0; tid < 2 * n; ++tid) {
        if (!tensor_pinned[tid] && birth[tid] < 0) {
            dead_elems = std::max(dead_elems, elems[tid]);
            have_dead = true;
        }
    }
    if (have_dead) {
        const int dead_slot = static_cast<int>(slots.size());
        slots.push_back({dead_elems, 0});
        for (std::size_t tid = 0; tid < 2 * n; ++tid) {
            if (!tensor_pinned[tid] && birth[tid] < 0)
                slot_of[tid] = dead_slot;
        }
    }

    plan.slotElems.reserve(slots.size());
    for (const Slot &s : slots) {
        plan.slotElems.push_back(s.elems);
        plan.plannedElemsPerImage += s.elems;
    }
    for (const Layer &l : net.layers()) {
        plan.actSlot[static_cast<std::size_t>(l.id)] =
            slot_of[act_id(l.id)];
        plan.errSlot[static_cast<std::size_t>(l.id)] =
            slot_of[err_id(l.id)];
    }
    return plan;
}

} // namespace sd::dnn
