#include "dnn/roofline.hh"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <ostream>

#include "core/export.hh"
#include "core/parallel.hh"
#include "dnn/gemm.hh"
#include "dnn/network.hh"
#include "dnn/reference.hh"

namespace sd::dnn {

namespace {

/** Attribution string for the layer's forward kernel. */
std::string
layerAlgo(const Layer &l)
{
    switch (l.kind) {
      case LayerKind::Conv:
        return convAlgoName(resolveConvAlgo(l, convAlgo()));
      case LayerKind::Fc:
        return "gemm";
      default:
        return "-";
    }
}

/**
 * One xorshift64 step is three dependent shift+xor pairs; with the
 * xor fused behind each shift the chain retires in ~4 cycles on every
 * recent x86/ARM core. The multiplier below is that model.
 */
constexpr double kXorshiftCyclesPerIter = 4.0;

double
measureClockGhz()
{
    using clock = std::chrono::steady_clock;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    // Warm up the frequency governor before the timed chain.
    for (int i = 0; i < 2'000'000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    constexpr int kIters = 20'000'000;
    const auto t0 = clock::now();
    for (int i = 0; i < kIters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    const double secs =
        std::chrono::duration<double>(clock::now() - t0).count();
    // Keep the chain observable so the loop cannot be elided.
    if (x == 0 || secs <= 0.0)
        return 0.0;
    return kXorshiftCyclesPerIter * kIters / secs / 1e9;
}

} // namespace

double
estimateClockGhz()
{
    static const double ghz = measureClockGhz();
    return ghz;
}

RooflineReport
rooflineReport(const ReferenceEngine &engine,
               const std::string &network_name)
{
    const Network &net = engine.network();
    const std::uint64_t batch = engine.batchSize();

    RooflineReport rep;
    rep.network = network_name;
    rep.batch = engine.batchSize();
    rep.engineLiveBytes = engine.liveBytes();
    rep.engineHighWaterBytes = engine.highWaterBytes();
    rep.memPlan = memPlanModeName(engine.memMode());
    rep.plannedBytes = engine.plannedBytes();
    rep.unplannedBytes = engine.unplannedBytes();
    rep.activationHighWaterBytes = engine.activationHighWaterBytes();

    for (const Layer &l : net.layers()) {
        LayerRoofline lr;
        lr.id = l.id;
        lr.name = l.name;
        lr.kind = layerKindName(l.kind);
        lr.algo = layerAlgo(l);
        lr.flops = l.isCompute() ? 2 * l.macCount() * batch : 0;
        lr.bytes = 4 * (batch * (l.inputElems() + l.outputElems()) +
                        l.weightCount());
        lr.liveBytes =
            4 * (2 * batch * l.outputElems() + 2 * l.weightCount());
        lr.ms = engine.forwardMillis(l.id);

        rep.totalFlops += lr.flops;
        rep.totalBytes += lr.bytes;
        rep.totalMs += lr.ms;
        rep.layers.push_back(std::move(lr));
    }

    const GemmKernelModel model = gemmKernelModel(gemmKernel());
    rep.gemmKernel = model.name;
    rep.clockGhz = estimateClockGhz();
    rep.peakCores = std::min(jobs(), hardwareJobs());
    rep.peakGflops =
        model.flopsPerCycle() * rep.clockGhz * rep.peakCores;
    return rep;
}

Table
rooflineTable(const RooflineReport &report)
{
    Table t({"layer", "kind", "algo", "MFLOP", "MB", "live MB",
             "flop/B", "ms", "GFLOP/s", "%peak"});
    for (const LayerRoofline &l : report.layers) {
        t.addRow({l.name, l.kind, l.algo,
                  fmtDouble(static_cast<double>(l.flops) / 1e6, 2),
                  fmtDouble(static_cast<double>(l.bytes) / 1e6, 2),
                  fmtDouble(static_cast<double>(l.liveBytes) / 1e6, 2),
                  fmtDouble(l.intensity(), 2), fmtDouble(l.ms, 3),
                  fmtDouble(l.gflops(), 2),
                  fmtDouble(l.pctPeak(report.peakGflops), 1)});
    }
    const double total_gflops =
        report.totalMs <= 0.0
            ? 0.0
            : static_cast<double>(report.totalFlops) /
                  (report.totalMs * 1e6);
    const double total_pct =
        report.peakGflops <= 0.0
            ? 0.0
            : 100.0 * total_gflops / report.peakGflops;
    t.addRow({"TOTAL", "", report.gemmKernel,
              fmtDouble(static_cast<double>(report.totalFlops) / 1e6, 2),
              fmtDouble(static_cast<double>(report.totalBytes) / 1e6, 2),
              fmtDouble(static_cast<double>(report.engineHighWaterBytes) /
                            1e6, 2),
              "", fmtDouble(report.totalMs, 3),
              fmtDouble(total_gflops, 2), fmtDouble(total_pct, 1)});
    return t;
}

void
writeRooflineJson(JsonWriter &w, const RooflineReport &report)
{
    w.beginObject();
    w.field("schema", kRooflineSchema);
    w.field("network", report.network);
    w.field("batch", static_cast<std::uint64_t>(report.batch));
    w.field("totalFlops", report.totalFlops);
    w.field("totalBytes", report.totalBytes);
    w.field("engineLiveBytes", report.engineLiveBytes);
    w.field("engineHighWaterBytes", report.engineHighWaterBytes);
    w.field("memPlan", report.memPlan);
    w.field("plannedBytes", report.plannedBytes);
    w.field("unplannedBytes", report.unplannedBytes);
    w.field("activationHighWaterBytes",
            report.activationHighWaterBytes);
    w.field("totalMs", report.totalMs);
    w.field("gemmKernel", report.gemmKernel);
    w.field("clockGhz", report.clockGhz);
    w.field("peakCores", static_cast<std::int64_t>(report.peakCores));
    w.field("peakGflops", report.peakGflops);
    w.key("layers");
    w.beginArray();
    for (const LayerRoofline &l : report.layers) {
        w.beginObject();
        w.field("id", l.id);
        w.field("name", l.name);
        w.field("kind", l.kind);
        w.field("algo", l.algo);
        w.field("flops", l.flops);
        w.field("bytes", l.bytes);
        w.field("liveBytes", l.liveBytes);
        w.field("intensity", l.intensity());
        w.field("ms", l.ms);
        w.field("gflops", l.gflops());
        w.field("pctPeak", l.pctPeak(report.peakGflops));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace sd::dnn
