#include "dnn/roofline.hh"

#include <ostream>

#include "core/export.hh"
#include "dnn/network.hh"
#include "dnn/reference.hh"

namespace sd::dnn {

namespace {

/** Attribution string for the layer's forward kernel. */
std::string
layerAlgo(const Layer &l)
{
    switch (l.kind) {
      case LayerKind::Conv:
        return convAlgoName(resolveConvAlgo(l, convAlgo()));
      case LayerKind::Fc:
        return "gemm";
      default:
        return "-";
    }
}

} // namespace

RooflineReport
rooflineReport(const ReferenceEngine &engine,
               const std::string &network_name)
{
    const Network &net = engine.network();
    const std::uint64_t batch = engine.batchSize();

    RooflineReport rep;
    rep.network = network_name;
    rep.batch = engine.batchSize();
    rep.engineLiveBytes = engine.liveBytes();
    rep.engineHighWaterBytes = engine.highWaterBytes();

    for (const Layer &l : net.layers()) {
        LayerRoofline lr;
        lr.id = l.id;
        lr.name = l.name;
        lr.kind = layerKindName(l.kind);
        lr.algo = layerAlgo(l);
        lr.flops = l.isCompute() ? 2 * l.macCount() * batch : 0;
        lr.bytes = 4 * (batch * (l.inputElems() + l.outputElems()) +
                        l.weightCount());
        lr.liveBytes =
            4 * (2 * batch * l.outputElems() + 2 * l.weightCount());
        lr.ms = engine.forwardMillis(l.id);

        rep.totalFlops += lr.flops;
        rep.totalBytes += lr.bytes;
        rep.totalMs += lr.ms;
        rep.layers.push_back(std::move(lr));
    }
    return rep;
}

Table
rooflineTable(const RooflineReport &report)
{
    Table t({"layer", "kind", "algo", "MFLOP", "MB", "live MB",
             "flop/B", "ms", "GFLOP/s"});
    for (const LayerRoofline &l : report.layers) {
        t.addRow({l.name, l.kind, l.algo,
                  fmtDouble(static_cast<double>(l.flops) / 1e6, 2),
                  fmtDouble(static_cast<double>(l.bytes) / 1e6, 2),
                  fmtDouble(static_cast<double>(l.liveBytes) / 1e6, 2),
                  fmtDouble(l.intensity(), 2), fmtDouble(l.ms, 3),
                  fmtDouble(l.gflops(), 2)});
    }
    const double total_gflops =
        report.totalMs <= 0.0
            ? 0.0
            : static_cast<double>(report.totalFlops) /
                  (report.totalMs * 1e6);
    t.addRow({"TOTAL", "", "",
              fmtDouble(static_cast<double>(report.totalFlops) / 1e6, 2),
              fmtDouble(static_cast<double>(report.totalBytes) / 1e6, 2),
              fmtDouble(static_cast<double>(report.engineHighWaterBytes) /
                            1e6, 2),
              "", fmtDouble(report.totalMs, 3),
              fmtDouble(total_gflops, 2)});
    return t;
}

void
writeRooflineJson(JsonWriter &w, const RooflineReport &report)
{
    w.beginObject();
    w.field("schema", kRooflineSchema);
    w.field("network", report.network);
    w.field("batch", static_cast<std::uint64_t>(report.batch));
    w.field("totalFlops", report.totalFlops);
    w.field("totalBytes", report.totalBytes);
    w.field("engineLiveBytes", report.engineLiveBytes);
    w.field("engineHighWaterBytes", report.engineHighWaterBytes);
    w.field("totalMs", report.totalMs);
    w.key("layers");
    w.beginArray();
    for (const LayerRoofline &l : report.layers) {
        w.beginObject();
        w.field("id", l.id);
        w.field("name", l.name);
        w.field("kind", l.kind);
        w.field("algo", l.algo);
        w.field("flops", l.flops);
        w.field("bytes", l.bytes);
        w.field("liveBytes", l.liveBytes);
        w.field("intensity", l.intensity());
        w.field("ms", l.ms);
        w.field("gflops", l.gflops());
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace sd::dnn
