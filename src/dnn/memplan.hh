/**
 * @file
 * Graph-level memory planner for the reference engine.
 *
 * The engine historically kept every layer's activation and error
 * tensor alive for the whole pass, so activation memory grew linearly
 * with depth x batch. This module computes per-tensor lifetimes over
 * the layer DAG for a given pass shape (forward-only vs.
 * forward+backward), then greedily colors tensors whose lifetimes do
 * not overlap onto shared *slots*. The engine allocates the slots from
 * a single grow-only float arena and rebinds non-owning Tensor views
 * into it whenever the batch or pass shape changes.
 *
 * Lifetime model (DESIGN.md "Memory planning" has the long form):
 * program points are the forward step of each layer in topological
 * order, then — for forward+backward — the loss step and the backward
 * step of each layer in reverse topological order. A tensor's lifetime
 * is the inclusive interval [first touch, last touch] over those
 * steps, where a touch is any read or write the engine's kernels make
 * (e.g. a Conv backward step touches its own error, its own
 * activation, its input's activation and its input's error). Two
 * tensors may share a slot iff their intervals are disjoint; tensors
 * touched in the same step never share.
 *
 * Coloring rule: tensors are processed in birth order (ties by tensor
 * id), and each takes the free slot whose per-image size is closest to
 * its own (best fit, lowest index on ties), growing the slot if
 * needed; a new slot is opened when none is free. The plan depends
 * only on the topology and pass shape — never on thread count or
 * timing — so it is deterministic across SD_JOBS values.
 *
 * Tensors the pass never touches (every error in a forward-only plan)
 * still need correctly-shaped storage behind the engine's getters;
 * they all share one "dead" slot sized to the largest of them.
 *
 * Pinned layers are excluded from sharing entirely: the engine keeps
 * dedicated owning buffers for them so their activation()/error()
 * getters stay value-correct after any pass. The engine pins the
 * input and output layers by default (ReferenceEngine::pin adds more).
 */

#ifndef SCALEDEEP_DNN_MEMPLAN_HH
#define SCALEDEEP_DNN_MEMPLAN_HH

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "dnn/network.hh"

namespace sd::dnn {

// --- memory-planning mode selection ---

/**
 * Whether the reference engine binds activations/errors through the
 * planner.
 *
 *  - Off: every layer owns dedicated acts_/errors_ tensors — the
 *    pre-planner layout, preserved bit for bit.
 *  - Share: non-pinned tensors are views into a grow-only arena with
 *    liveness-based slot sharing. Training results are bit-identical
 *    to Off; only the memory footprint (and the value-stability of
 *    non-pinned getters, see the pinning contract above) changes.
 *
 * The process-global selection defaults to the SD_MEMPLAN environment
 * variable (fatal on an unrecognized value) and Off when unset;
 * front-ends expose it as --memplan.
 */
enum class MemPlanMode { Off, Share };

/** Lower-case canonical name ("off", "share"). */
const char *memPlanModeName(MemPlanMode mode);

/**
 * Strict parse of a MemPlanMode name, std::from_chars style: the whole
 * string must be exactly one canonical lower-case name. Returns false
 * (leaving @p out untouched) on anything else.
 */
bool parseMemPlanMode(std::string_view text, MemPlanMode &out);

/**
 * The mode front-ends should adopt: SD_MEMPLAN when set — fatal with
 * the valid set listed if it does not parse — else Off.
 */
MemPlanMode defaultMemPlanMode();

/** Set the process-global memory-planning mode. Engines capture the
 * mode at construction; setting it does not rebind live engines. */
void setMemPlanMode(MemPlanMode mode);

/**
 * Current process-global memory-planning mode. Initialized from
 * defaultMemPlanMode() on first use, so SD_MEMPLAN reaches every
 * engine construction site (tests included) without per-driver
 * plumbing.
 */
MemPlanMode memPlanMode();

// --- the plan ---

/** Which steps a pass executes — forward only (forward()/predict())
 * or forward+backward (forwardBackward()/trainMinibatch()). The two
 * shapes have different lifetimes and therefore different plans. */
enum class PassShape { Forward, ForwardBackward };

/** Lower-case canonical name ("forward", "forward_backward"). */
const char *passShapeName(PassShape shape);

/** Slot starts are aligned to this many floats within the arena. */
inline constexpr std::size_t kMemPlanAlignElems = 16;

/**
 * One pass shape's slot assignment for a network. Sizes are in
 * per-image elements: the plan is batch-independent, and offsets scale
 * by the batch at bind time.
 */
struct MemPlan
{
    /** actSlot/errSlot value for layers the engine pins. */
    static constexpr int kPinned = -1;

    PassShape shape = PassShape::Forward;
    std::vector<int> actSlot;   ///< per layer id; slot index or kPinned
    std::vector<int> errSlot;   ///< per layer id; slot index or kPinned
    std::vector<std::uint64_t> slotElems;   ///< per-image elems per slot

    std::uint64_t plannedElemsPerImage = 0; ///< sum of slotElems
    std::uint64_t pinnedElemsPerImage = 0;  ///< acts+errs of pinned layers
    /** What the Off layout holds: acts+errs of *every* layer. */
    std::uint64_t unplannedElemsPerImage = 0;

    bool operator==(const MemPlan &) const = default;

    /** Start of slot @p slot (in elements) in an arena bound for
     * @p batch images; every slot start is kMemPlanAlignElems-aligned. */
    std::uint64_t slotOffsetElems(int slot, std::size_t batch) const;

    /** Total arena elements needed for @p batch images. */
    std::uint64_t arenaElems(std::size_t batch) const;
};

/** The engine's default pin set: the input layer's activation plus the
 * output layer's activation and error (net.numLayers() flags). */
std::vector<char> defaultPinnedLayers(const Network &net);

/**
 * Compute the slot assignment for @p net under @p shape. @p pinned
 * holds one flag per layer id; pinned layers get no slot. The result
 * is a pure function of (topology, shape, pinned) — deterministic
 * across processes and jobs values.
 */
MemPlan planMemory(const Network &net, PassShape shape,
                   const std::vector<char> &pinned);

} // namespace sd::dnn

#endif // SCALEDEEP_DNN_MEMPLAN_HH
