/**
 * @file
 * The 6x16 register-blocked GEMM microkernels behind dnn/gemm.cc's
 * packed driver: an explicit AVX2/FMA version (compiled via function
 * target attributes, executed only when cpuHasAvx2Fma()) and a
 * portable generic version the compiler vectorizes for the baseline
 * ISA. Both accumulate the full tile in ascending k order, so each
 * dispatch level is bit-identical for every jobs value; the two levels
 * differ only by FMA-vs-separate rounding (tests bound the gap).
 *
 * The AVX2 fp32 tile holds 12 accumulator registers (6 rows x 2 ymm)
 * plus two B vectors and one broadcast — 15 of 16 ymm, the classic
 * occupancy for this shape. The bf16 tile loads one 256-bit B row
 * (16 bf16 words), widening with zero-unpacks; the B panel is packed
 * in bColOrder so the unpack lands columns 0..7 / 8..15 directly in
 * the two accumulators (see gemm_kernel.hh).
 */

#include "dnn/gemm_kernel.hh"

#include "dnn/gemm.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SD_GEMM_X86 1
#else
#define SD_GEMM_X86 0
#endif

namespace sd::dnn {

bool
cpuHasAvx2Fma()
{
#if SD_GEMM_X86 && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

namespace detail {

namespace {

/** op(B)(k, j) over the stored matrix. */
inline float
loadOpB(bool trans, const float *B, int ldb, int k, int j)
{
    return trans ? B[static_cast<std::size_t>(j) * ldb + k]
                 : B[static_cast<std::size_t>(k) * ldb + j];
}

/** Scalar bf16 B packing in an arbitrary slot order — the generic
 * kernel's packer (identity order) and the AVX2 packer's edge /
 * transposed fallback. */
void
packBBf16Order(const std::uint8_t *order, bool trans, const float *B,
               int ldb, int kc, int kl, int j0, int jn,
               std::uint16_t *dst)
{
    const int npanels = (jn + kNR - 1) / kNR;
    for (int p = 0; p < npanels; ++p) {
        std::uint16_t *pp =
            dst + static_cast<std::size_t>(p) * kNR * kl;
        for (int k = 0; k < kl; ++k) {
            std::uint16_t *row =
                pp + static_cast<std::size_t>(k) * kNR;
            for (int c = 0; c < kNR; ++c) {
                const int j = p * kNR + order[c];
                row[c] = j < jn
                             ? floatToBf16(loadOpB(trans, B, ldb,
                                                   kc + k, j0 + j))
                             : floatToBf16(0.0f);
            }
        }
    }
}

constexpr std::uint8_t kIdentityOrder[kNR] = {
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};

void
packBBf16Generic(bool trans, const float *B, int ldb, int kc, int kl,
                 int j0, int jn, std::uint16_t *dst)
{
    packBBf16Order(kIdentityOrder, trans, B, ldb, kc, kl, j0, jn, dst);
}

void
roundPanelGeneric(float *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        p[i] = bf16ToFloat(floatToBf16(p[i]));
}

/** Scalar write-out of a staged tile into the valid C corner. */
inline void
writeTileEdge(const float *tmp, float alpha, float *c,
              std::ptrdiff_t ldc, int mr, int nr)
{
    for (int r = 0; r < mr; ++r) {
        float *crow = c + r * ldc;
        const float *trow = tmp + r * kNR;
        for (int j = 0; j < nr; ++j)
            crow[j] += alpha * trow[j];
    }
}

// --- generic (portable) microkernels ---
//
// A full 6x16 fp32 tile is 96 floats — four times the baseline 128-bit
// register file — so a naive acc[kMR][kNR] spills every FMA to the
// stack. Instead the tile is computed as two independent 6x8 halves,
// each holding 12 four-lane accumulators (GCC/Clang vector extensions,
// ISA-agnostic) that fit the 16-register budget. Each C element is
// still accumulated by exactly one half in ascending k order, so the
// determinism contract is unchanged.

#if defined(__GNUC__) || defined(__clang__)
#define SD_GEMM_VEC_EXT 1
using v4f = float __attribute__((vector_size(16)));

inline v4f
loadV4(const float *p)
{
    v4f v;
    __builtin_memcpy(&v, p, sizeof v);
    return v;
}

inline void
storeV4(float *p, v4f v)
{
    __builtin_memcpy(p, &v, sizeof v);
}

/** One 6x8 half-tile: tmp[r * kNR + 0..7] = sum over the panel block,
 * reading B columns [col0, col0 + 8) of each packed row. */
inline void
halfTileGeneric(int kl, const float *ap, const float *bp, int col0,
                float *tmp)
{
    v4f a0l{}, a0h{}, a1l{}, a1h{}, a2l{}, a2h{};
    v4f a3l{}, a3h{}, a4l{}, a4h{}, a5l{}, a5h{};
    for (int k = 0; k < kl; ++k) {
        const float *ak = ap + static_cast<std::size_t>(k) * kMR;
        const float *bk =
            bp + static_cast<std::size_t>(k) * kNR + col0;
        const v4f bl = loadV4(bk);
        const v4f bh = loadV4(bk + 4);
        v4f a;
        a = v4f{} + ak[0];
        a0l += a * bl;
        a0h += a * bh;
        a = v4f{} + ak[1];
        a1l += a * bl;
        a1h += a * bh;
        a = v4f{} + ak[2];
        a2l += a * bl;
        a2h += a * bh;
        a = v4f{} + ak[3];
        a3l += a * bl;
        a3h += a * bh;
        a = v4f{} + ak[4];
        a4l += a * bl;
        a4h += a * bh;
        a = v4f{} + ak[5];
        a5l += a * bl;
        a5h += a * bh;
    }
    const v4f acc[kMR][2] = {{a0l, a0h}, {a1l, a1h}, {a2l, a2h},
                             {a3l, a3h}, {a4l, a4h}, {a5l, a5h}};
    for (int r = 0; r < kMR; ++r) {
        storeV4(tmp + r * kNR + col0, acc[r][0]);
        storeV4(tmp + r * kNR + col0 + 4, acc[r][1]);
    }
}
#else
#define SD_GEMM_VEC_EXT 0
#endif

void
tileGeneric(int kl, const float *ap, const float *bp, float alpha,
            float *c, std::ptrdiff_t ldc, int mr, int nr)
{
    float acc[kMR * kNR];
#if SD_GEMM_VEC_EXT
    halfTileGeneric(kl, ap, bp, 0, acc);
    halfTileGeneric(kl, ap, bp, 8, acc);
#else
    for (int i = 0; i < kMR * kNR; ++i)
        acc[i] = 0.0f;
    for (int k = 0; k < kl; ++k) {
        const float *ak = ap + static_cast<std::size_t>(k) * kMR;
        const float *bk = bp + static_cast<std::size_t>(k) * kNR;
        for (int r = 0; r < kMR; ++r) {
            const float a = ak[r];
            for (int j = 0; j < kNR; ++j)
                acc[r * kNR + j] += a * bk[j];
        }
    }
#endif
    writeTileEdge(acc, alpha, c, ldc, mr, nr);
}

void
tileGenericBf16(int kl, const float *ap, const std::uint16_t *bp,
                float alpha, float *c, std::ptrdiff_t ldc, int mr,
                int nr)
{
#if SD_GEMM_VEC_EXT
    // Widen each packed bf16 row once into an fp32 staging panel, in
    // slabs sized so the slab plus both half-tile passes stay in L1.
    constexpr int kSlabK = 64;
    float acc[kMR * kNR];
    float part[kMR * kNR];
    float bw[kSlabK * kNR];
    for (int i = 0; i < kMR * kNR; ++i)
        acc[i] = 0.0f;
    // Slab partials are summed in ascending-k slab order with
    // shape-only boundaries, preserving the jobs bit-identity.
    for (int k0 = 0; k0 < kl; k0 += kSlabK) {
        const int ks = kl - k0 < kSlabK ? kl - k0 : kSlabK;
        const std::uint16_t *bk =
            bp + static_cast<std::size_t>(k0) * kNR;
        for (int i = 0; i < ks * kNR; ++i)
            bw[i] = bf16ToFloat(bk[i]);
        halfTileGeneric(ks, ap + static_cast<std::size_t>(k0) * kMR,
                        bw, 0, part);
        halfTileGeneric(ks, ap + static_cast<std::size_t>(k0) * kMR,
                        bw, 8, part);
        for (int i = 0; i < kMR * kNR; ++i)
            acc[i] += part[i];
    }
    writeTileEdge(acc, alpha, c, ldc, mr, nr);
#else
    float acc[kMR][kNR] = {};
    for (int k = 0; k < kl; ++k) {
        const float *ak = ap + static_cast<std::size_t>(k) * kMR;
        const std::uint16_t *bk =
            bp + static_cast<std::size_t>(k) * kNR;
        float bw[kNR];
        for (int j = 0; j < kNR; ++j)
            bw[j] = bf16ToFloat(bk[j]);
        for (int r = 0; r < kMR; ++r) {
            const float a = ak[r];
            for (int j = 0; j < kNR; ++j)
                acc[r][j] += a * bw[j];
        }
    }
    writeTileEdge(&acc[0][0], alpha, c, ldc, mr, nr);
#endif
}

#if SD_GEMM_X86

// --- AVX2/FMA microkernels ---

/** bf16 B-panel slot -> logical column under the zero-unpack widening
 * (unpacklo gives slots {0..3, 8..11}, unpackhi {4..7, 12..15}) —
 * exactly the per-lane interleave _mm256_packus_epi32 produces, so the
 * vectorized packer needs no shuffle. */
constexpr std::uint8_t kAvx2Bf16Order[kNR] = {
    0, 1, 2, 3, 8, 9, 10, 11, 4, 5, 6, 7, 12, 13, 14, 15};

/** Eight lanes of floatToBf16 (round-to-nearest-even, NaN preserved
 * quiet), result as zero-extended 32-bit words. */
__attribute__((target("avx2,fma"), always_inline)) inline __m256i
bf16RoundAvx2(__m256 v)
{
    const __m256i bits = _mm256_castps_si256(v);
    const __m256i lsb = _mm256_and_si256(_mm256_srli_epi32(bits, 16),
                                         _mm256_set1_epi32(1));
    const __m256i rounded = _mm256_srli_epi32(
        _mm256_add_epi32(_mm256_add_epi32(bits,
                                          _mm256_set1_epi32(0x7fff)),
                         lsb),
        16);
    const __m256i quiet = _mm256_or_si256(_mm256_srli_epi32(bits, 16),
                                          _mm256_set1_epi32(0x0040));
    const __m256 unord = _mm256_cmp_ps(v, v, _CMP_UNORD_Q);
    return _mm256_blendv_epi8(rounded, quiet,
                              _mm256_castps_si256(unord));
}

__attribute__((target("avx2,fma"))) void
packBBf16Avx2(bool trans, const float *B, int ldb, int kc, int kl,
              int j0, int jn, std::uint16_t *dst)
{
    const int npanels = (jn + kNR - 1) / kNR;
    if (trans) {
        // Transposed source: each logical column j is contiguous in k,
        // so round 8 k's per vector into a staging row, then scatter
        // the 16-bit words down the panel (the scatter is plain
        // stores; the rounding is what was worth vectorizing).
        for (int p = 0; p < npanels; ++p) {
            std::uint16_t *pp =
                dst + static_cast<std::size_t>(p) * kNR * kl;
            for (int c = 0; c < kNR; ++c) {
                const int j = p * kNR + kAvx2Bf16Order[c];
                if (j >= jn) {
                    for (int k = 0; k < kl; ++k)
                        pp[static_cast<std::size_t>(k) * kNR + c] = 0;
                    continue;
                }
                const float *src =
                    B + static_cast<std::size_t>(j0 + j) * ldb + kc;
                alignas(16) std::uint16_t tmp[8];
                int k = 0;
                for (; k + 8 <= kl; k += 8) {
                    const __m256i r =
                        bf16RoundAvx2(_mm256_loadu_ps(src + k));
                    _mm_store_si128(
                        reinterpret_cast<__m128i *>(tmp),
                        _mm_packus_epi32(
                            _mm256_castsi256_si128(r),
                            _mm256_extracti128_si256(r, 1)));
                    for (int t = 0; t < 8; ++t)
                        pp[static_cast<std::size_t>(k + t) * kNR + c] =
                            tmp[t];
                }
                for (; k < kl; ++k)
                    pp[static_cast<std::size_t>(k) * kNR + c] =
                        floatToBf16(src[k]);
            }
        }
        return;
    }
    for (int p = 0; p < npanels; ++p) {
        if (jn - p * kNR < kNR) {
            // Ragged last panel: scalar, in slot order.
            packBBf16Order(kAvx2Bf16Order, false, B, ldb, kc, kl,
                           j0 + p * kNR, jn - p * kNR,
                           dst + static_cast<std::size_t>(p) * kNR *
                                     kl);
            continue;
        }
        std::uint16_t *pp =
            dst + static_cast<std::size_t>(p) * kNR * kl;
        const float *src =
            B + static_cast<std::size_t>(kc) * ldb + j0 + p * kNR;
        for (int k = 0; k < kl; ++k) {
            const __m256i lo =
                bf16RoundAvx2(_mm256_loadu_ps(src));
            const __m256i hi =
                bf16RoundAvx2(_mm256_loadu_ps(src + 8));
            // packus interleaves per 128-bit lane: word order becomes
            // {0..3, 8..11, 4..7, 12..15} == kAvx2Bf16Order.
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(
                    pp + static_cast<std::size_t>(k) * kNR),
                _mm256_packus_epi32(lo, hi));
            src += ldb;
        }
    }
}

__attribute__((target("avx2,fma"))) void
roundPanelAvx2(float *p, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // Rounded bf16 word shifted back up is exactly the widened
        // float — no pack/unpack round trip needed in place.
        const __m256i r = bf16RoundAvx2(_mm256_loadu_ps(p + i));
        _mm256_storeu_ps(
            p + i,
            _mm256_castsi256_ps(_mm256_slli_epi32(r, 16)));
    }
    for (; i < n; ++i)
        p[i] = bf16ToFloat(floatToBf16(p[i]));
}

__attribute__((target("avx2,fma"))) void
tileAvx2(int kl, const float *ap, const float *bp, float alpha,
         float *c, std::ptrdiff_t ldc, int mr, int nr)
{
    __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
    __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
    __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
    __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
    __m256 a40 = _mm256_setzero_ps(), a41 = _mm256_setzero_ps();
    __m256 a50 = _mm256_setzero_ps(), a51 = _mm256_setzero_ps();
    for (int k = 0; k < kl; ++k) {
        const float *ak = ap + static_cast<std::size_t>(k) * kMR;
        const float *bk = bp + static_cast<std::size_t>(k) * kNR;
        const __m256 b0 = _mm256_loadu_ps(bk);
        const __m256 b1 = _mm256_loadu_ps(bk + 8);
        __m256 a;
        a = _mm256_broadcast_ss(ak + 0);
        a00 = _mm256_fmadd_ps(a, b0, a00);
        a01 = _mm256_fmadd_ps(a, b1, a01);
        a = _mm256_broadcast_ss(ak + 1);
        a10 = _mm256_fmadd_ps(a, b0, a10);
        a11 = _mm256_fmadd_ps(a, b1, a11);
        a = _mm256_broadcast_ss(ak + 2);
        a20 = _mm256_fmadd_ps(a, b0, a20);
        a21 = _mm256_fmadd_ps(a, b1, a21);
        a = _mm256_broadcast_ss(ak + 3);
        a30 = _mm256_fmadd_ps(a, b0, a30);
        a31 = _mm256_fmadd_ps(a, b1, a31);
        a = _mm256_broadcast_ss(ak + 4);
        a40 = _mm256_fmadd_ps(a, b0, a40);
        a41 = _mm256_fmadd_ps(a, b1, a41);
        a = _mm256_broadcast_ss(ak + 5);
        a50 = _mm256_fmadd_ps(a, b0, a50);
        a51 = _mm256_fmadd_ps(a, b1, a51);
    }
    const __m256 acc[kMR][2] = {{a00, a01}, {a10, a11}, {a20, a21},
                                {a30, a31}, {a40, a41}, {a50, a51}};
    if (mr == kMR && nr == kNR) {
        const __m256 av = _mm256_set1_ps(alpha);
        for (int r = 0; r < kMR; ++r) {
            float *crow = c + r * ldc;
            _mm256_storeu_ps(
                crow, _mm256_fmadd_ps(av, acc[r][0],
                                      _mm256_loadu_ps(crow)));
            _mm256_storeu_ps(
                crow + 8, _mm256_fmadd_ps(av, acc[r][1],
                                          _mm256_loadu_ps(crow + 8)));
        }
        return;
    }
    alignas(32) float tmp[kMR * kNR];
    for (int r = 0; r < kMR; ++r) {
        _mm256_store_ps(tmp + r * kNR, acc[r][0]);
        _mm256_store_ps(tmp + r * kNR + 8, acc[r][1]);
    }
    writeTileEdge(tmp, alpha, c, ldc, mr, nr);
}

__attribute__((target("avx2,fma"))) void
tileAvx2Bf16(int kl, const float *ap, const std::uint16_t *bp,
             float alpha, float *c, std::ptrdiff_t ldc, int mr, int nr)
{
    __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
    __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
    __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
    __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
    __m256 a40 = _mm256_setzero_ps(), a41 = _mm256_setzero_ps();
    __m256 a50 = _mm256_setzero_ps(), a51 = _mm256_setzero_ps();
    const __m256i z = _mm256_setzero_si256();
    for (int k = 0; k < kl; ++k) {
        const float *ak = ap + static_cast<std::size_t>(k) * kMR;
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(
                bp + static_cast<std::size_t>(k) * kNR));
        // Zero-unpack widens bf16 words into the high halves of fp32
        // lanes — exactly bf16ToFloat, eight lanes at a time. The
        // panel's bColOrder pre-permutation makes lo/hi land logical
        // columns 0..7 / 8..15.
        const __m256 b0 =
            _mm256_castsi256_ps(_mm256_unpacklo_epi16(z, v));
        const __m256 b1 =
            _mm256_castsi256_ps(_mm256_unpackhi_epi16(z, v));
        __m256 a;
        a = _mm256_broadcast_ss(ak + 0);
        a00 = _mm256_fmadd_ps(a, b0, a00);
        a01 = _mm256_fmadd_ps(a, b1, a01);
        a = _mm256_broadcast_ss(ak + 1);
        a10 = _mm256_fmadd_ps(a, b0, a10);
        a11 = _mm256_fmadd_ps(a, b1, a11);
        a = _mm256_broadcast_ss(ak + 2);
        a20 = _mm256_fmadd_ps(a, b0, a20);
        a21 = _mm256_fmadd_ps(a, b1, a21);
        a = _mm256_broadcast_ss(ak + 3);
        a30 = _mm256_fmadd_ps(a, b0, a30);
        a31 = _mm256_fmadd_ps(a, b1, a31);
        a = _mm256_broadcast_ss(ak + 4);
        a40 = _mm256_fmadd_ps(a, b0, a40);
        a41 = _mm256_fmadd_ps(a, b1, a41);
        a = _mm256_broadcast_ss(ak + 5);
        a50 = _mm256_fmadd_ps(a, b0, a50);
        a51 = _mm256_fmadd_ps(a, b1, a51);
    }
    const __m256 acc[kMR][2] = {{a00, a01}, {a10, a11}, {a20, a21},
                                {a30, a31}, {a40, a41}, {a50, a51}};
    if (mr == kMR && nr == kNR) {
        const __m256 av = _mm256_set1_ps(alpha);
        for (int r = 0; r < kMR; ++r) {
            float *crow = c + r * ldc;
            _mm256_storeu_ps(
                crow, _mm256_fmadd_ps(av, acc[r][0],
                                      _mm256_loadu_ps(crow)));
            _mm256_storeu_ps(
                crow + 8, _mm256_fmadd_ps(av, acc[r][1],
                                          _mm256_loadu_ps(crow + 8)));
        }
        return;
    }
    alignas(32) float tmp[kMR * kNR];
    for (int r = 0; r < kMR; ++r) {
        _mm256_store_ps(tmp + r * kNR, acc[r][0]);
        _mm256_store_ps(tmp + r * kNR + 8, acc[r][1]);
    }
    writeTileEdge(tmp, alpha, c, ldc, mr, nr);
}

#endif // SD_GEMM_X86

} // namespace

const MicroKernel &
genericMicroKernel()
{
    static const MicroKernel mk{"generic", &tileGeneric,
                                &tileGenericBf16, &packBBf16Generic,
                                &roundPanelGeneric};
    return mk;
}

const MicroKernel &
avx2MicroKernel()
{
#if SD_GEMM_X86
    static const MicroKernel mk{"avx2", &tileAvx2, &tileAvx2Bf16,
                                &packBBf16Avx2, &roundPanelAvx2};
    return mk;
#else
    // Unreachable on supported dispatch (resolveGemmKernel is fatal
    // before handing Avx2 to a non-x86 build); keep a safe fallback.
    return genericMicroKernel();
#endif
}

} // namespace detail

} // namespace sd::dnn
