/**
 * @file
 * Internal contract between the packed-GEMM driver (dnn/gemm.cc) and
 * the microkernel translation unit (dnn/gemm_microkernel.cc). Not
 * installed API — include only from src/dnn.
 *
 * The driver packs op(A) into kMR-high and op(B) into kNR-wide
 * zero-padded micro-panels; a microkernel computes one full
 * kMR x kNR C tile in registers over a whole kc block (ascending k)
 * and then adds alpha * tile into the valid [mr x nr] corner of C.
 * Zero padding means the full-tile arithmetic is always safe; only the
 * write-out is masked.
 *
 * Panel layouts (kl = rows of the current kc block):
 *   A panel : kl x kMR, a[k * kMR + r]    — fp32; under bf16 the
 *             values are bf16-rounded but stored pre-widened so the
 *             row broadcast stays a single load.
 *   B panel : kl x kNR, b[k * kNR + c]    — fp32, natural column
 *             order.
 *   B panel (bf16): kl x kNR 16-bit words in a kernel-private slot
 *             permutation written by the kernel's own packBBf16 —
 *             chosen so the AVX2 zero-unpack widening lands columns
 *             0..7 / 8..15 in the two accumulator registers without a
 *             shuffle (the generic kernel uses identity order).
 */

#ifndef SCALEDEEP_DNN_GEMM_KERNEL_HH
#define SCALEDEEP_DNN_GEMM_KERNEL_HH

#include <cstddef>
#include <cstdint>

namespace sd::dnn::detail {

/** Microkernel tile height (rows of C). */
inline constexpr int kMR = 6;
/** Microkernel tile width (columns of C). */
inline constexpr int kNR = 16;

/**
 * C[0..mr)[0..nr) += alpha * sum_k ap[k][*] * bp[k][*] with the full
 * kMR x kNR tile accumulated in registers in ascending k order.
 */
using TileFn = void (*)(int kl, const float *ap, const float *bp,
                        float alpha, float *c, std::ptrdiff_t ldc,
                        int mr, int nr);

/** TileFn over a 16-bit (bf16) B panel in the kernel's private slot
 * order (written by the kernel's own packBBf16). */
using TileBf16Fn = void (*)(int kl, const float *ap,
                            const std::uint16_t *bp, float alpha,
                            float *c, std::ptrdiff_t ldc, int mr,
                            int nr);

/**
 * Pack op(B)[kc, kc+kl) x [j0, j0+jn) with round-to-nearest-even bf16
 * rounding into kNR-wide zero-padded panels at @p dst, in whatever
 * slot order the kernel's tileBf16 expects. Per-kernel because the
 * AVX2 version vector-rounds 16 columns at a time and gets its slot
 * permutation for free from the per-lane pack instruction.
 */
using PackBBf16Fn = void (*)(bool trans, const float *B, int ldb,
                             int kc, int kl, int j0, int jn,
                             std::uint16_t *dst);

/** In-place bf16 round-trip (round-to-nearest-even, widen back) over
 * a contiguous fp32 panel — how a packed A panel gets its bf16 values
 * while staying pre-widened for the broadcast. */
using RoundPanelFn = void (*)(float *p, std::size_t n);

struct MicroKernel
{
    const char *name;            ///< dispatch-level name
    TileFn tile;
    TileBf16Fn tileBf16;
    PackBBf16Fn packBBf16;
    RoundPanelFn roundPanel;
};

/** Portable microkernel (baseline ISA; compiler-vectorized). */
const MicroKernel &genericMicroKernel();

/** AVX2/FMA microkernel — call only when cpuHasAvx2Fma(). */
const MicroKernel &avx2MicroKernel();

} // namespace sd::dnn::detail

#endif // SCALEDEEP_DNN_GEMM_KERNEL_HH
