/**
 * @file
 * The Network container: a DAG of layers built through a fluent builder
 * API, with shape inference at construction time and the summary metrics
 * the paper reports in Figure 15 (layer counts, neurons, weights,
 * connections).
 */

#ifndef SCALEDEEP_DNN_NETWORK_HH
#define SCALEDEEP_DNN_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.hh"

namespace sd::dnn {

/** Figure-15-style summary of a network. */
struct NetworkSummary
{
    int convLayers = 0;     ///< logical CONV layers (module groups count 1)
    int fcLayers = 0;
    int sampLayers = 0;
    std::uint64_t neurons = 0;       ///< CONV+FC output elements
    std::uint64_t weights = 0;
    std::uint64_t connections = 0;   ///< MACs per image
};

/**
 * A feed-forward DNN represented as a DAG of layers.
 *
 * Layers are stored in topological order (producers precede consumers) —
 * the builder enforces this because a layer may only reference already
 * added layers.
 */
class Network
{
  public:
    explicit Network(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    std::size_t numLayers() const { return layers_.size(); }
    const Layer &layer(LayerId id) const;
    const std::vector<Layer> &layers() const { return layers_; }

    /** Ids of layers that consume @p id's output. */
    std::vector<LayerId> consumers(LayerId id) const;

    /** The final layer (network output). */
    const Layer &outputLayer() const;

    NetworkSummary summary() const;

    /** Total FP multiply-accumulates per image across all layers. */
    std::uint64_t totalMacs() const;

    /** Total trainable weights. */
    std::uint64_t totalWeights() const;

    // --- construction (used by NetworkBuilder) ---
    LayerId addLayer(Layer layer);

  private:
    std::string name_;
    std::vector<Layer> layers_;
};

/**
 * Fluent builder producing shape-checked networks.
 *
 * Example:
 * @code
 * NetworkBuilder b("LeNet", 1, 28, 28);
 * auto c1 = b.conv("c1", b.input(), 6, 5, 1, 0);
 * auto s1 = b.maxPool("s1", c1, 2, 2);
 * auto f1 = b.fc("f1", s1, 10);
 * Network net = b.build();
 * @endcode
 */
class NetworkBuilder
{
  public:
    NetworkBuilder(std::string name, int channels, int height, int width);

    /** Id of the input layer. */
    LayerId input() const { return 0; }

    /** Square-kernel convolution + activation. */
    LayerId conv(const std::string &name, LayerId in, int out_channels,
                 int kernel, int stride = 1, int pad = 0, int groups = 1,
                 Activation act = Activation::ReLU,
                 const std::string &group = "");

    LayerId maxPool(const std::string &name, LayerId in, int window,
                    int stride, int pad = 0);
    LayerId avgPool(const std::string &name, LayerId in, int window,
                    int stride, int pad = 0);

    /** Fully-connected layer (flattens its input). */
    LayerId fc(const std::string &name, LayerId in, int out_neurons,
               Activation act = Activation::ReLU);

    /** Elementwise addition of same-shape inputs (residual join). */
    LayerId eltwise(const std::string &name, std::vector<LayerId> ins,
                    Activation act = Activation::ReLU,
                    const std::string &group = "");

    /** Channel concatenation of same-spatial-size inputs. */
    LayerId concat(const std::string &name, std::vector<LayerId> ins,
                   const std::string &group = "");

    /** Finish; the builder must not be reused afterwards. */
    Network build();

    /** Shape peek for composing modules. */
    const Layer &layerAt(LayerId id) const { return net_.layer(id); }

  private:
    LayerId addPool(const std::string &name, LayerId in, int window,
                    int stride, int pad, SampKind kind);

    Network net_;
    bool built_ = false;
};

} // namespace sd::dnn

#endif // SCALEDEEP_DNN_NETWORK_HH
