/**
 * @file
 * Winograd minimal-filtering convolution kernels — F(2x2,3x3) and
 * F(4x4,3x3) — for the 3x3 stride-1 convolutions that dominate the
 * VGG/ResNet half of the benchmark suite (Section 6.1 of the paper
 * names Winograd as unexploited headroom; Figure 18's cuDNN/Neon GPU
 * baselines already use it).
 *
 * The output is decomposed into m x m tiles (m = 2 or 4); each tile is
 * computed from an (m+2) x (m+2) input window through the classic
 * three-transform pipeline
 *
 *     Y = A^T [ (G g G^T) . (B^T d B) ] A
 *
 * where the elementwise products over all tiles and channels batch
 * into (m+2)^2 small GEMMs of shape [ocg x icg] * [icg x tiles] on the
 * existing blocked sgemm. This cuts the multiply count per output from
 * 9 to (m+2)^2/m^2 — 4 for F(2x2,3x3) (2.25x fewer) and 2.25 for
 * F(4x4,3x3) (4x fewer) — at the cost of transform adds and a
 * tolerable numerical reassociation (see DESIGN.md for the tolerance
 * contract against the Naive oracle).
 *
 * Determinism: the batched kernels parallelize over disjoint
 * (image, group, tile-block) output blocks whose boundaries depend
 * only on the layer shape — never on the jobs value — and every
 * GEMM/transform accumulates in a fixed order, so results are
 * bit-identical for every jobs value (the core/parallel.hh contract).
 *
 * These kernels are not called directly by the engine: convForward /
 * convBackwardData in dnn/reference.hh dispatch here when the selected
 * ConvAlgo (SD_CONV_ALGO / --conv-algo) routes an eligible layer to
 * Winograd. Weight-gradient has no Winograd formulation in this
 * decomposition (the reduction runs over tiles, not taps) and always
 * falls back to the exact im2col GEMM path.
 */

#ifndef SCALEDEEP_DNN_WINOGRAD_HH
#define SCALEDEEP_DNN_WINOGRAD_HH

#include <cstdint>

#include "dnn/layer.hh"
#include "dnn/tensor.hh"

namespace sd::dnn {

/**
 * Whether the Winograd transform applies to @p l: a Conv layer with a
 * 3x3 kernel, stride 1 and padding <= 2 (the backward-data pass runs
 * the forward transform on 180-degree-rotated filters with padding
 * kernel-1-pad, which must stay non-negative). Grouped convolutions
 * and any batch size are fine. Dilation is not representable in this
 * repository's Layer, so every layer is implicitly dilation 1.
 */
bool winogradApplies(const Layer &l);

/**
 * Winograd convolution forward for @p l (which must satisfy
 * winogradApplies). @p m is the output-tile size: 2 for F(2x2,3x3), 4
 * for F(4x4,3x3). Drop-in replacement for convForward: NCHW-batched
 * (batch inferred from in.size() / inputElems), same weight layout
 * [outC, inC/groups, 3, 3], no activation. Filters are transformed
 * once per invocation, then tile GEMMs run per (image, group,
 * tile-block).
 */
void winogradConvForward(const Layer &l, const Tensor &in,
                         const Tensor &weights, Tensor &out, int m);

/**
 * Winograd convolution data-gradient for @p l: din = w^T (*) dout,
 * computed as a Winograd *forward* convolution of dout with the
 * 180-degree-rotated, channel-transposed filters and padding
 * (kernel - 1 - pad). Drop-in replacement for convBackwardData.
 */
void winogradConvBackwardData(const Layer &l, const Tensor &dout,
                              const Tensor &weights, Tensor &din, int m);

/**
 * Analytic count of the tile-GEMM multiplies one winogradConvForward
 * call performs: batch * groups * (m+2)^2 * (outC/groups) *
 * (inC/groups) * ceil(outH/m) * ceil(outW/m). This is exactly what the
 * instrumented counter below advances by, including the partial-tile
 * padding overhead at ragged spatial edges; bench/ablation_winograd
 * cross-checks the two.
 */
std::uint64_t winogradForwardMuls(const Layer &l, int m,
                                  std::size_t batch);

/**
 * Instrumented multiply counter: every winogradConvForward (and hence
 * winogradConvBackwardData) call atomically advances this process-wide
 * counter by the number of tile-GEMM multiplies it issued. Transform
 * arithmetic (adds plus the constant-factor multiplies of the
 * transforms themselves) is deliberately excluded — the counter
 * measures the reduction the algorithm is about, matching the analytic
 * model in bench/ablation_winograd.
 */
std::uint64_t winogradMulCount();

/** Reset the instrumented multiply counter to zero. */
void resetWinogradMulCount();

} // namespace sd::dnn

#endif // SCALEDEEP_DNN_WINOGRAD_HH
