#include "dnn/winograd.hh"

#include <algorithm>
#include <atomic>
#include <vector>

#include "core/logging.hh"
#include "core/parallel.hh"
#include "dnn/gemm.hh"

namespace sd::dnn {

namespace {

// --- transform matrices ---
//
// F(2x2,3x3): interpolation points {0, 1, -1, inf}; all entries are
// exact in binary floating point, so the only numerical cost of the
// F(2x2) path is reassociation.
constexpr float kG2[4 * 3] = {
    1.0f,  0.0f,  0.0f,
    0.5f,  0.5f,  0.5f,
    0.5f, -0.5f,  0.5f,
    0.0f,  0.0f,  1.0f,
};
constexpr float kBT2[4 * 4] = {
    1.0f,  0.0f, -1.0f,  0.0f,
    0.0f,  1.0f,  1.0f,  0.0f,
    0.0f, -1.0f,  1.0f,  0.0f,
    0.0f,  1.0f,  0.0f, -1.0f,
};
constexpr float kAT2[2 * 4] = {
    1.0f,  1.0f,  1.0f,  0.0f,
    0.0f,  1.0f, -1.0f, -1.0f,
};

// F(4x4,3x3): interpolation points {0, 1, -1, 1/2, -1/2, inf}
// rather than Lavin & Gray's {0, 1, -1, 2, -2, inf}. Both are the
// standard Toom-Cook construction (G rows are [1, p, p^2]/M'(p), BT
// rows the ascending coefficients of M(x)/(x - p), AT the
// Vandermonde of the points; the inf point contributes the leading
// coefficient), but the half-point set keeps the inverse-transform
// entries at |p|^3 <= 1 instead of 8, so float rounding picked up in
// the transform-domain GEMMs is amplified far less on the way back
// out — roughly 4x lower end-to-end error at 256 channels, which is
// what keeps the F(4x4) path inside its 1e-3 oracle contract. The
// thirds-family entries are inexact in binary FP; F(2x2) above stays
// exactly representable.
constexpr float kG4[6 * 3] = {
            4.0f,          0.0f,         0.0f,
     2.0f / 3.0f,   2.0f / 3.0f,  2.0f / 3.0f,
     2.0f / 3.0f,  -2.0f / 3.0f,  2.0f / 3.0f,
    -8.0f / 3.0f,  -4.0f / 3.0f, -2.0f / 3.0f,
    -8.0f / 3.0f,   4.0f / 3.0f, -2.0f / 3.0f,
            0.0f,          0.0f,         1.0f,
};
constexpr float kBT4[6 * 6] = {
    0.25f,   0.0f, -1.25f,   0.0f, 1.0f, 0.0f,
     0.0f, -0.25f, -0.25f,   1.0f, 1.0f, 0.0f,
     0.0f,  0.25f, -0.25f,  -1.0f, 1.0f, 0.0f,
     0.0f,  -0.5f,  -1.0f,   0.5f, 1.0f, 0.0f,
     0.0f,   0.5f,  -1.0f,  -0.5f, 1.0f, 0.0f,
     0.0f,  0.25f,   0.0f, -1.25f, 0.0f, 1.0f,
};
constexpr float kAT4[4 * 6] = {
    1.0f, 1.0f,  1.0f,   1.0f,    1.0f, 0.0f,
    0.0f, 1.0f, -1.0f,   0.5f,   -0.5f, 0.0f,
    0.0f, 1.0f,  1.0f,  0.25f,   0.25f, 0.0f,
    0.0f, 1.0f, -1.0f, 0.125f, -0.125f, 1.0f,
};

/**
 * Tiles per (image, group, tile-block) parallel grain. Fixed — block
 * boundaries must depend only on the layer shape so that results are
 * bit-identical for every jobs value — and sized so the per-block V/M
 * scratch stays cache-resident while the tile GEMMs still see a
 * worthwhile N dimension.
 */
constexpr int kTileBlock = 64;

std::atomic<std::uint64_t> g_wino_muls{0};

/**
 * out = T * in * T^T for the small dense transform matrices: @p T is
 * rows x k row-major, @p in is k x k, @p out is rows x rows, @p tmp is
 * rows x k caller scratch. Accumulates in double — the F(4x4)
 * matrices amplify the dynamic range (entries up to 8 with heavy
 * cancellation), and carrying the two small products at double
 * precision keeps the end-to-end error inside the 1e-3 oracle
 * contract. Fixed loop order keeps the rounding identical on every
 * call site.
 */
inline void
congruence(const float *T, int rows, int k, const float *in, float *out,
           double *tmp)
{
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < k; ++j) {
            double acc = 0.0;
            for (int r = 0; r < k; ++r)
                acc += static_cast<double>(T[i * k + r]) *
                       in[r * k + j];
            tmp[i * k + j] = acc;
        }
    }
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < rows; ++j) {
            double acc = 0.0;
            for (int r = 0; r < k; ++r)
                acc += tmp[i * k + r] * T[j * k + r];
            out[i * rows + j] = static_cast<float>(acc);
        }
    }
}

struct Tables
{
    const float *G;     ///< alpha x 3 filter transform
    const float *BT;    ///< alpha x alpha data transform
    const float *AT;    ///< m x alpha inverse transform
};

Tables
tablesFor(int m)
{
    switch (m) {
      case 2:
        return {kG2, kBT2, kAT2};
      case 4:
        return {kG4, kBT4, kAT4};
      default:
        panic("winograd: unsupported tile size m=", m,
              " (supported: 2, 4)");
    }
}

inline std::size_t
divCeil(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

bool
winogradApplies(const Layer &l)
{
    return l.kind == LayerKind::Conv && l.kernelH == 3 &&
           l.kernelW == 3 && l.strideH == 1 && l.strideW == 1 &&
           l.padH <= 2 && l.padW <= 2 && l.outH >= 1 && l.outW >= 1;
}

std::uint64_t
winogradForwardMuls(const Layer &l, int m, std::size_t batch)
{
    const std::uint64_t alpha = static_cast<std::uint64_t>(m) + 2;
    const std::uint64_t icg =
        static_cast<std::uint64_t>(l.inChannels) / l.groups;
    const std::uint64_t ocg =
        static_cast<std::uint64_t>(l.outChannels) / l.groups;
    const std::uint64_t tiles =
        divCeil(static_cast<std::size_t>(l.outH), m) *
        divCeil(static_cast<std::size_t>(l.outW), m);
    return batch * l.groups * alpha * alpha * ocg * icg * tiles;
}

std::uint64_t
winogradMulCount()
{
    return g_wino_muls.load(std::memory_order_relaxed);
}

void
resetWinogradMulCount()
{
    g_wino_muls.store(0, std::memory_order_relaxed);
}

void
winogradConvForward(const Layer &l, const Tensor &in,
                    const Tensor &weights, Tensor &out, int m)
{
    if (!winogradApplies(l))
        panic("winogradConvForward ", l.name,
              ": layer is not Winograd-eligible (need 3x3, stride 1, "
              "pad <= 2)");
    const Tables tb = tablesFor(m);
    const int alpha = m + 2;
    const int aa = alpha * alpha;
    const int icg = l.inChannels / l.groups;
    const int ocg = l.outChannels / l.groups;
    const std::size_t per_in = l.inputElems();
    const std::size_t per_out = l.outputElems();
    if (per_in == 0 || in.size() == 0 || in.size() % per_in != 0)
        panic("winogradConvForward ", l.name, ": bad input size");
    const std::size_t batch = in.size() / per_in;
    if (weights.size() != l.weightCount())
        panic("winogradConvForward ", l.name, ": bad weight size");
    if (out.size() != batch * per_out)
        panic("winogradConvForward ", l.name, ": bad output size");

    const std::size_t tiles_h =
        divCeil(static_cast<std::size_t>(l.outH), m);
    const std::size_t tiles_w =
        divCeil(static_cast<std::size_t>(l.outW), m);
    const std::size_t tiles = tiles_h * tiles_w;
    const std::size_t blocks = divCeil(tiles, kTileBlock);
    const std::size_t groups = static_cast<std::size_t>(l.groups);

    // Filter transform, once per invocation: U[g][xi][oc][ic] so each
    // xi slice is a ready-to-use [ocg x icg] GEMM operand. (oc, g)
    // slices are disjoint — safe to fan out.
    std::vector<float> U(groups * static_cast<std::size_t>(aa) * ocg *
                         icg);
    parallelForRange(groups * static_cast<std::size_t>(ocg),
                     [&](std::size_t begin, std::size_t end) {
        std::vector<float> u(static_cast<std::size_t>(aa));
        std::vector<double> tmp(static_cast<std::size_t>(alpha) * 3);
        for (std::size_t b = begin; b < end; ++b) {
            const std::size_t g = b / ocg;
            const std::size_t oc = b % ocg;
            for (int ic = 0; ic < icg; ++ic) {
                const float *w0 =
                    weights.data() +
                    ((g * ocg + oc) * icg +
                     static_cast<std::size_t>(ic)) * 9;
                congruence(tb.G, alpha, 3, w0, u.data(), tmp.data());
                for (int xi = 0; xi < aa; ++xi)
                    U[((g * aa + static_cast<std::size_t>(xi)) * ocg +
                       oc) * icg + static_cast<std::size_t>(ic)] =
                        u[static_cast<std::size_t>(xi)];
            }
        }
    });

    // Main grain: (image, group, tile-block). Each block owns the
    // output tiles [t0, t0 + bt) of channels [g*ocg, (g+1)*ocg) of
    // image n outright, and block boundaries depend only on the layer
    // shape — bit-identical results for every jobs value.
    parallelForRange(batch * groups * blocks,
                     [&](std::size_t begin, std::size_t end) {
        std::vector<float> V(static_cast<std::size_t>(aa) * icg *
                             kTileBlock);
        std::vector<float> M(static_cast<std::size_t>(aa) * ocg *
                             kTileBlock);
        std::vector<float> d(static_cast<std::size_t>(aa));
        std::vector<float> v(static_cast<std::size_t>(aa));
        std::vector<double> tmp(static_cast<std::size_t>(aa));
        std::vector<float> y(static_cast<std::size_t>(m) * m);
        std::vector<double> ytmp(static_cast<std::size_t>(m) * alpha);
        std::uint64_t muls = 0;
        for (std::size_t b = begin; b < end; ++b) {
            const std::size_t n = b / (groups * blocks);
            const std::size_t rest = b % (groups * blocks);
            const std::size_t g = rest / blocks;
            const std::size_t t0 = (rest % blocks) * kTileBlock;
            const int bt =
                static_cast<int>(std::min<std::size_t>(kTileBlock,
                                                       tiles - t0));

            // Input transform: V[xi][ic][t] for this block's tiles.
            const float *x = in.data() + n * per_in;
            for (int ic = 0; ic < icg; ++ic) {
                const float *plane =
                    x + (g * icg + static_cast<std::size_t>(ic)) *
                            l.inH * l.inW;
                for (int t = 0; t < bt; ++t) {
                    const std::size_t tile = t0 +
                                             static_cast<std::size_t>(t);
                    const int th = static_cast<int>(tile / tiles_w);
                    const int tw = static_cast<int>(tile % tiles_w);
                    const int h0 = th * m - l.padH;
                    const int w0 = tw * m - l.padW;
                    for (int i = 0; i < alpha; ++i) {
                        const int h = h0 + i;
                        float *drow = d.data() +
                                      static_cast<std::size_t>(i) *
                                          alpha;
                        if (h < 0 || h >= l.inH) {
                            std::fill(drow, drow + alpha, 0.0f);
                            continue;
                        }
                        const float *irow =
                            plane + static_cast<std::size_t>(h) * l.inW;
                        for (int j = 0; j < alpha; ++j) {
                            const int wcol = w0 + j;
                            drow[j] = (wcol < 0 || wcol >= l.inW)
                                ? 0.0f
                                : irow[wcol];
                        }
                    }
                    congruence(tb.BT, alpha, alpha, d.data(), v.data(),
                               tmp.data());
                    for (int xi = 0; xi < aa; ++xi)
                        V[(static_cast<std::size_t>(xi) * icg +
                           static_cast<std::size_t>(ic)) * bt +
                          static_cast<std::size_t>(t)] =
                            v[static_cast<std::size_t>(xi)];
                }
            }

            // One [ocg x icg] * [icg x bt] GEMM per transform point.
            for (int xi = 0; xi < aa; ++xi) {
                engineGemm(GemmOp::NoTrans, GemmOp::NoTrans, ocg, bt, icg,
                           1.0f,
                           U.data() +
                               (g * aa + static_cast<std::size_t>(xi)) *
                                   ocg * icg,
                           icg,
                           V.data() +
                               static_cast<std::size_t>(xi) * icg * bt,
                           bt, 0.0f,
                           M.data() +
                               static_cast<std::size_t>(xi) * ocg * bt,
                           bt);
                muls += static_cast<std::uint64_t>(ocg) * icg * bt;
            }

            // Inverse transform + scatter (clipped at ragged edges).
            float *yout = out.data() + n * per_out +
                          g * ocg * l.outH * l.outW;
            for (int oc = 0; oc < ocg; ++oc) {
                float *plane = yout + static_cast<std::size_t>(oc) *
                                          l.outH * l.outW;
                for (int t = 0; t < bt; ++t) {
                    const std::size_t tile = t0 +
                                             static_cast<std::size_t>(t);
                    const int th = static_cast<int>(tile / tiles_w);
                    const int tw = static_cast<int>(tile % tiles_w);
                    for (int xi = 0; xi < aa; ++xi)
                        d[static_cast<std::size_t>(xi)] =
                            M[(static_cast<std::size_t>(xi) * ocg +
                               static_cast<std::size_t>(oc)) * bt +
                              static_cast<std::size_t>(t)];
                    congruence(tb.AT, m, alpha, d.data(), y.data(),
                               ytmp.data());
                    const int rows = std::min(m, l.outH - th * m);
                    const int cols = std::min(m, l.outW - tw * m);
                    for (int i = 0; i < rows; ++i) {
                        float *orow =
                            plane +
                            static_cast<std::size_t>(th * m + i) *
                                l.outW + tw * m;
                        const float *yrow =
                            y.data() + static_cast<std::size_t>(i) * m;
                        std::copy(yrow, yrow + cols, orow);
                    }
                }
            }
        }
        if (muls)
            g_wino_muls.fetch_add(muls, std::memory_order_relaxed);
    });
}

void
winogradConvBackwardData(const Layer &l, const Tensor &dout,
                         const Tensor &weights, Tensor &din, int m)
{
    if (!winogradApplies(l))
        panic("winogradConvBackwardData ", l.name,
              ": layer is not Winograd-eligible");
    const int icg = l.inChannels / l.groups;
    const int ocg = l.outChannels / l.groups;
    if (weights.size() != l.weightCount())
        panic("winogradConvBackwardData ", l.name, ": bad weight size");

    // The stride-1 data gradient is itself a 3x3 stride-1 convolution:
    // din = dout (*) rot180(w) with the in/out channel roles swapped
    // (within each group) and padding (kernel - 1 - pad). Build that
    // mirrored layer descriptor plus the rotated weights and reuse the
    // forward kernel.
    Layer r = l;
    r.name = l.name + ".bwd_data";
    r.inChannels = l.outChannels;
    r.outChannels = l.inChannels;
    r.inH = l.outH;
    r.inW = l.outW;
    r.outH = l.inH;
    r.outW = l.inW;
    r.padH = l.kernelH - 1 - l.padH;
    r.padW = l.kernelW - 1 - l.padW;

    // wr[c][oc_in_group][kh][kw] = w[oc][c_in_group][2-kh][2-kw].
    Tensor wr({weights.size()});
    for (int c = 0; c < l.inChannels; ++c) {
        const int g = c / icg;
        for (int o = 0; o < ocg; ++o) {
            const float *src =
                weights.data() +
                ((static_cast<std::size_t>(g) * ocg + o) * icg +
                 (c - g * icg)) * 9;
            float *dst =
                wr.data() +
                (static_cast<std::size_t>(c) * ocg + o) * 9;
            for (int k = 0; k < 9; ++k)
                dst[k] = src[8 - k];
        }
    }
    winogradConvForward(r, dout, wr, din, m);
}

} // namespace sd::dnn
