#include "dnn/gemm.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/logging.hh"
#include "core/parallel.hh"

namespace sd::dnn {

namespace {

/** Reduction-dimension block: op(A) panel rows stay cache resident. */
constexpr int kBlockK = 256;
/** Column-stripe width when there are plenty of columns. */
constexpr int kStripeN = 512;

/** y[i] = beta*y[i] + alpha * dot(op(A) row i, x) for a column vector. */
void
gemv(GemmOp opA, int M, int K, float alpha, const float *A, int lda,
     const float *x, int incx, float beta, float *y, int incy)
{
    if (opA == GemmOp::NoTrans) {
        parallelForRange(static_cast<std::size_t>(M),
                         [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const float *arow = A + i * lda;
                float acc = 0.0f;
                for (int k = 0; k < K; ++k)
                    acc += arow[k] * x[static_cast<std::size_t>(k) *
                                       incx];
                float &out = y[i * incy];
                out = beta == 0.0f ? alpha * acc
                                   : beta * out + alpha * acc;
            }
        });
        return;
    }
    // Transposed: y[i] = sum_k A[k][i] * x[k]; stripe over i so each
    // output element accumulates k in ascending order.
    parallelForRange(static_cast<std::size_t>(M),
                     [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            float &out = y[i * incy];
            out = beta == 0.0f ? 0.0f : beta * out;
        }
        for (int k = 0; k < K; ++k) {
            const float a =
                alpha * x[static_cast<std::size_t>(k) * incx];
            const float *arow = A + static_cast<std::size_t>(k) * lda;
            for (std::size_t i = begin; i < end; ++i)
                y[i * incy] += a * arow[i];
        }
    });
}

} // namespace

void
sgemm(GemmOp opA, GemmOp opB, int M, int N, int K, float alpha,
      const float *A, int lda, const float *B, int ldb, float beta,
      float *C, int ldc)
{
    if (M <= 0 || N <= 0)
        return;
    if (alpha == 0.0f || K <= 0) {
        // Standard BLAS early-out: the product contributes nothing, so
        // only the beta scaling of C remains — no packing, no k loop.
        for (int i = 0; i < M; ++i) {
            float *crow = C + static_cast<std::size_t>(i) * ldc;
            if (beta == 0.0f)
                std::fill(crow, crow + N, 0.0f);
            else if (beta != 1.0f)
                for (int j = 0; j < N; ++j)
                    crow[j] *= beta;
        }
        return;
    }
    if (N == 1) {
        gemv(opA, M, K, alpha, A, lda, B, ldb, beta, C, ldc);
        return;
    }

    // Column stripes are the parallel grain: every stripe owns its C
    // columns outright and accumulates k in ascending order, so the
    // result is independent of both the stripe width and the worker
    // count. Narrow the stripes when N alone must feed all workers.
    int stripe = kStripeN;
    const int njobs = jobs();
    while (stripe > 64 && (N + stripe - 1) / stripe < 2 * njobs)
        stripe /= 2;
    const int num_stripes = (N + stripe - 1) / stripe;

    parallelFor(static_cast<std::size_t>(num_stripes),
                [&](std::size_t s) {
        const int j0 = static_cast<int>(s) * stripe;
        const int jn = std::min(stripe, N - j0);

        // Apply beta once, before any k accumulation.
        for (int i = 0; i < M; ++i) {
            float *crow = C + static_cast<std::size_t>(i) * ldc + j0;
            if (beta == 0.0f)
                std::fill(crow, crow + jn, 0.0f);
            else if (beta != 1.0f)
                for (int j = 0; j < jn; ++j)
                    crow[j] *= beta;
        }

        std::vector<float> apack, bpack;
        if (opA == GemmOp::Trans)
            apack.resize(static_cast<std::size_t>(M) * kBlockK);
        if (opB == GemmOp::Trans)
            bpack.resize(static_cast<std::size_t>(kBlockK) * jn);

        for (int kc = 0; kc < K; kc += kBlockK) {
            const int kl = std::min(kBlockK, K - kc);

            // op(A) panel: rows of length kl, contiguous in k.
            const float *ap = A;
            std::size_t ap_stride = static_cast<std::size_t>(lda);
            std::size_t ap_off = kc;
            if (opA == GemmOp::Trans) {
                for (int i = 0; i < M; ++i)
                    for (int k = 0; k < kl; ++k)
                        apack[static_cast<std::size_t>(i) * kl + k] =
                            A[static_cast<std::size_t>(kc + k) * lda +
                              i];
                ap = apack.data();
                ap_stride = kl;
                ap_off = 0;
            }

            // op(B) panel: rows of length jn, contiguous in j.
            const float *bp;
            std::size_t bp_stride;
            if (opB == GemmOp::NoTrans) {
                bp = B + static_cast<std::size_t>(kc) * ldb + j0;
                bp_stride = static_cast<std::size_t>(ldb);
            } else {
                for (int k = 0; k < kl; ++k)
                    for (int j = 0; j < jn; ++j)
                        bpack[static_cast<std::size_t>(k) * jn + j] =
                            B[static_cast<std::size_t>(j0 + j) * ldb +
                              kc + k];
                bp = bpack.data();
                bp_stride = jn;
            }

            for (int i = 0; i < M; ++i) {
                const float *arow =
                    ap + static_cast<std::size_t>(i) * ap_stride +
                    ap_off;
                float *crow =
                    C + static_cast<std::size_t>(i) * ldc + j0;
                for (int k = 0; k < kl; ++k) {
                    const float a = alpha * arow[k];
                    const float *brow = bp + k * bp_stride;
                    for (int j = 0; j < jn; ++j)
                        crow[j] += a * brow[j];
                }
            }
        }
    });
}

void
im2col(const Layer &l, const float *in, int c0, int channels,
       float *cols)
{
    const int out_hw = l.outH * l.outW;
    const std::size_t khw =
        static_cast<std::size_t>(l.kernelH) * l.kernelW;
    parallelFor(static_cast<std::size_t>(channels), [&](std::size_t ci) {
        const int c = c0 + static_cast<int>(ci);
        const float *src =
            in + (static_cast<std::size_t>(c) * l.inH) * l.inW;
        float *dst = cols + ci * khw * out_hw;
        for (int kh = 0; kh < l.kernelH; ++kh) {
            for (int kw = 0; kw < l.kernelW; ++kw) {
                float *row = dst;
                dst += out_hw;
                for (int oh = 0; oh < l.outH; ++oh) {
                    const int h = oh * l.strideH - l.padH + kh;
                    float *out = row + static_cast<std::size_t>(oh) *
                                 l.outW;
                    if (h < 0 || h >= l.inH) {
                        std::fill(out, out + l.outW, 0.0f);
                        continue;
                    }
                    const float *irow =
                        src + static_cast<std::size_t>(h) * l.inW;
                    for (int ow = 0; ow < l.outW; ++ow) {
                        const int wi = ow * l.strideW - l.padW + kw;
                        out[ow] = (wi < 0 || wi >= l.inW)
                            ? 0.0f
                            : irow[wi];
                    }
                }
            }
        }
    });
}

void
col2im(const Layer &l, const float *cols, int c0, int channels,
       float *in)
{
    const int out_hw = l.outH * l.outW;
    const std::size_t khw =
        static_cast<std::size_t>(l.kernelH) * l.kernelW;
    // Rows (c, kh, kw) only ever scatter into channel c, so channels
    // are an exact parallel partition; within a channel the (kh, kw,
    // oh, ow) order is fixed, keeping the accumulation deterministic.
    parallelFor(static_cast<std::size_t>(channels), [&](std::size_t ci) {
        const int c = c0 + static_cast<int>(ci);
        float *dst = in + (static_cast<std::size_t>(c) * l.inH) * l.inW;
        const float *src = cols + ci * khw * out_hw;
        for (int kh = 0; kh < l.kernelH; ++kh) {
            for (int kw = 0; kw < l.kernelW; ++kw) {
                const float *row = src;
                src += out_hw;
                for (int oh = 0; oh < l.outH; ++oh) {
                    const int h = oh * l.strideH - l.padH + kh;
                    if (h < 0 || h >= l.inH)
                        continue;
                    float *drow =
                        dst + static_cast<std::size_t>(h) * l.inW;
                    const float *srow =
                        row + static_cast<std::size_t>(oh) * l.outW;
                    for (int ow = 0; ow < l.outW; ++ow) {
                        const int wi = ow * l.strideW - l.padW + kw;
                        if (wi >= 0 && wi < l.inW)
                            drow[wi] += srow[ow];
                    }
                }
            }
        }
    });
}

} // namespace sd::dnn
