#include "dnn/gemm.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/logging.hh"
#include "core/parallel.hh"
#include "dnn/gemm_kernel.hh"

namespace sd::dnn {

namespace {

/** Reduction-dimension block: packed panels stay cache resident. The
 * bf16 panels are half the bytes, so the block doubles at the same
 * footprint — halving the number of C read-modify-write passes. */
constexpr int kBlockK = 256;
constexpr int kBlockKBf16 = 512;
/** Column-stripe width when there are plenty of columns. Always a
 * multiple of the microkernel width kNR. */
constexpr int kStripeN = 512;

/** Process-global GemmKernel; -1 = not yet resolved from the env. */
std::atomic<int> g_gemm_kernel{-1};
/** Process-global GemmPrecision; -1 = not yet resolved from the env. */
std::atomic<int> g_gemm_precision{-1};

/** Times any thread-local packing buffer grew (see gemm.hh). */
std::atomic<std::uint64_t> g_scratch_allocs{0};

/**
 * Per-thread packing scratch. Buffers only ever grow, so a warmed
 * thread's steady state performs no allocation; every growth bumps
 * gemmScratchAllocs() for the bench/test assertion.
 */
struct PackScratch
{
    std::vector<float> a;
    std::vector<float> b;
    std::vector<std::uint16_t> b16;

    template <typename T>
    static T *
    ensure(std::vector<T> &v, std::size_t n)
    {
        if (v.size() < n) {
            g_scratch_allocs.fetch_add(1, std::memory_order_relaxed);
            v.resize(n);
        }
        return v.data();
    }
};

PackScratch &
packScratch()
{
    thread_local PackScratch s;
    return s;
}

/** y[i] = beta*y[i] + alpha * dot(op(A) row i, x) for a column vector.
 * Shared by every dispatch level (the N == 1 fast path). */
void
gemv(GemmOp opA, int M, int K, float alpha, const float *A, int lda,
     const float *x, int incx, float beta, float *y, int incy)
{
    if (opA == GemmOp::NoTrans) {
        parallelForRange(static_cast<std::size_t>(M),
                         [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const float *arow = A + i * lda;
                float acc = 0.0f;
                for (int k = 0; k < K; ++k)
                    acc += arow[k] * x[static_cast<std::size_t>(k) *
                                       incx];
                float &out = y[i * incy];
                out = beta == 0.0f ? alpha * acc
                                   : beta * out + alpha * acc;
            }
        });
        return;
    }
    // Transposed: y[i] = sum_k A[k][i] * x[k]; stripe over i so each
    // output element accumulates k in ascending order.
    parallelForRange(static_cast<std::size_t>(M),
                     [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            float &out = y[i * incy];
            out = beta == 0.0f ? 0.0f : beta * out;
        }
        for (int k = 0; k < K; ++k) {
            const float a =
                alpha * x[static_cast<std::size_t>(k) * incx];
            const float *arow = A + static_cast<std::size_t>(k) * lda;
            for (std::size_t i = begin; i < end; ++i)
                y[i * incy] += a * arow[i];
        }
    });
}

/** Scale the [M x jn] stripe of C at column j0 by beta, once, before
 * any k accumulation. */
void
applyBeta(int M, int j0, int jn, float beta, float *C, int ldc)
{
    for (int i = 0; i < M; ++i) {
        float *crow = C + static_cast<std::size_t>(i) * ldc + j0;
        if (beta == 0.0f)
            std::fill(crow, crow + jn, 0.0f);
        else if (beta != 1.0f)
            for (int j = 0; j < jn; ++j)
                crow[j] *= beta;
    }
}

/** Stripe width for this problem: narrow when N alone must feed all
 * workers. Depends only on (N, jobs) — never on scheduling. */
int
stripeWidth(int N)
{
    int stripe = kStripeN;
    const int njobs = jobs();
    while (stripe > 64 && (N + stripe - 1) / stripe < 2 * njobs)
        stripe /= 2;
    return stripe;
}

/**
 * The pre-microkernel cache-blocked scalar kernel, retained verbatim
 * as GemmKernel::Scalar: the measured baseline for the microkernel
 * speedup gate in BENCH_kernels.json and a second oracle in tests.
 */
void
sgemmScalar(GemmOp opA, GemmOp opB, int M, int N, int K, float alpha,
            const float *A, int lda, const float *B, int ldb,
            float beta, float *C, int ldc)
{
    const int stripe = stripeWidth(N);
    const int num_stripes = (N + stripe - 1) / stripe;

    parallelFor(static_cast<std::size_t>(num_stripes),
                [&](std::size_t s) {
        const int j0 = static_cast<int>(s) * stripe;
        const int jn = std::min(stripe, N - j0);
        applyBeta(M, j0, jn, beta, C, ldc);

        std::vector<float> apack, bpack;
        if (opA == GemmOp::Trans)
            apack.resize(static_cast<std::size_t>(M) * kBlockK);
        if (opB == GemmOp::Trans)
            bpack.resize(static_cast<std::size_t>(kBlockK) * jn);

        for (int kc = 0; kc < K; kc += kBlockK) {
            const int kl = std::min(kBlockK, K - kc);

            // op(A) panel: rows of length kl, contiguous in k.
            const float *ap = A;
            std::size_t ap_stride = static_cast<std::size_t>(lda);
            std::size_t ap_off = kc;
            if (opA == GemmOp::Trans) {
                for (int i = 0; i < M; ++i)
                    for (int k = 0; k < kl; ++k)
                        apack[static_cast<std::size_t>(i) * kl + k] =
                            A[static_cast<std::size_t>(kc + k) * lda +
                              i];
                ap = apack.data();
                ap_stride = kl;
                ap_off = 0;
            }

            // op(B) panel: rows of length jn, contiguous in j.
            const float *bp;
            std::size_t bp_stride;
            if (opB == GemmOp::NoTrans) {
                bp = B + static_cast<std::size_t>(kc) * ldb + j0;
                bp_stride = static_cast<std::size_t>(ldb);
            } else {
                for (int k = 0; k < kl; ++k)
                    for (int j = 0; j < jn; ++j)
                        bpack[static_cast<std::size_t>(k) * jn + j] =
                            B[static_cast<std::size_t>(j0 + j) * ldb +
                              kc + k];
                bp = bpack.data();
                bp_stride = jn;
            }

            for (int i = 0; i < M; ++i) {
                const float *arow =
                    ap + static_cast<std::size_t>(i) * ap_stride +
                    ap_off;
                float *crow =
                    C + static_cast<std::size_t>(i) * ldc + j0;
                for (int k = 0; k < kl; ++k) {
                    const float a = alpha * arow[k];
                    const float *brow = bp + k * bp_stride;
                    for (int j = 0; j < jn; ++j)
                        crow[j] += a * brow[j];
                }
            }
        }
    });
}

/** op(A)(i, k) over the stored matrix. */
inline float
loadOpA(GemmOp opA, const float *A, int lda, int i, int k)
{
    return opA == GemmOp::NoTrans
               ? A[static_cast<std::size_t>(i) * lda + k]
               : A[static_cast<std::size_t>(k) * lda + i];
}

/** op(B)(k, j) over the stored matrix. */
inline float
loadOpB(GemmOp opB, const float *B, int ldb, int k, int j)
{
    return opB == GemmOp::NoTrans
               ? B[static_cast<std::size_t>(k) * ldb + j]
               : B[static_cast<std::size_t>(j) * ldb + k];
}

/**
 * Pack op(A)[0..M) x [kc, kc+kl) into kMR-high micro-panels
 * (tile-major; within a tile k-major, zero-padded to kMR rows). The
 * bf16 variant rounds the packed panel in place afterwards
 * (MicroKernel::roundPanel) — a contiguous, vectorizable pass.
 */
void
packA(GemmOp opA, const float *A, int lda, int M, int kc, int kl,
      float *dst)
{
    using detail::kMR;
    const int mtiles = (M + kMR - 1) / kMR;
    for (int t = 0; t < mtiles; ++t) {
        float *tp = dst + static_cast<std::size_t>(t) * kMR * kl;
        for (int k = 0; k < kl; ++k) {
            for (int r = 0; r < kMR; ++r) {
                const int i = t * kMR + r;
                tp[static_cast<std::size_t>(k) * kMR + r] =
                    i < M ? loadOpA(opA, A, lda, i, kc + k) : 0.0f;
            }
        }
    }
}

/** Pack op(B)[kc, kc+kl) x [j0, j0+jn) into kNR-wide fp32
 * micro-panels (panel-major; within a panel k-major, zero-padded). */
void
packB(GemmOp opB, const float *B, int ldb, int kc, int kl, int j0,
      int jn, float *dst)
{
    using detail::kNR;
    const int npanels = (jn + kNR - 1) / kNR;
    for (int p = 0; p < npanels; ++p) {
        float *pp = dst + static_cast<std::size_t>(p) * kNR * kl;
        for (int k = 0; k < kl; ++k) {
            float *row = pp + static_cast<std::size_t>(k) * kNR;
            for (int c = 0; c < kNR; ++c) {
                const int j = p * kNR + c;
                row[c] = j < jn ? loadOpB(opB, B, ldb, kc + k, j0 + j)
                                : 0.0f;
            }
        }
    }
}

/**
 * The packed register-blocked driver. Column stripes of C are the
 * parallel grain exactly as in the scalar kernel; within a stripe the
 * kc blocks advance in ascending order and every microkernel tile
 * accumulates ascending k in registers, so results are bit-identical
 * for every jobs value. @p bf16 selects the bf16-storage variant.
 */
void
sgemmPacked(const detail::MicroKernel &mk, bool bf16, GemmOp opA,
            GemmOp opB, int M, int N, int K, float alpha,
            const float *A, int lda, const float *B, int ldb,
            float beta, float *C, int ldc)
{
    using detail::kMR;
    using detail::kNR;
    const int block_k = bf16 ? kBlockKBf16 : kBlockK;
    const int stripe = stripeWidth(N);
    const int num_stripes = (N + stripe - 1) / stripe;
    const int mtiles = (M + kMR - 1) / kMR;

    parallelFor(static_cast<std::size_t>(num_stripes),
                [&](std::size_t s) {
        const int j0 = static_cast<int>(s) * stripe;
        const int jn = std::min(stripe, N - j0);
        const int npanels = (jn + kNR - 1) / kNR;
        applyBeta(M, j0, jn, beta, C, ldc);

        PackScratch &scratch = packScratch();
        const std::size_t a_elems =
            static_cast<std::size_t>(mtiles) * kMR * block_k;
        const std::size_t b_elems =
            static_cast<std::size_t>(npanels) * kNR * block_k;
        float *ap = PackScratch::ensure(scratch.a, a_elems);
        float *bp = nullptr;
        std::uint16_t *bp16 = nullptr;
        if (bf16)
            bp16 = PackScratch::ensure(scratch.b16, b_elems);
        else
            bp = PackScratch::ensure(scratch.b, b_elems);

        for (int kc = 0; kc < K; kc += block_k) {
            const int kl = std::min(block_k, K - kc);
            packA(opA, A, lda, M, kc, kl, ap);
            if (bf16) {
                mk.roundPanel(ap, static_cast<std::size_t>(mtiles) *
                                      kMR * kl);
                mk.packBBf16(opB == GemmOp::Trans, B, ldb, kc, kl, j0,
                             jn, bp16);
            } else
                packB(opB, B, ldb, kc, kl, j0, jn, bp);

            for (int t = 0; t < mtiles; ++t) {
                const int i0 = t * kMR;
                const int mr = std::min(kMR, M - i0);
                const float *at =
                    ap + static_cast<std::size_t>(t) * kMR * kl;
                for (int p = 0; p < npanels; ++p) {
                    const int jp = p * kNR;
                    const int nr = std::min(kNR, jn - jp);
                    float *ct = C + static_cast<std::size_t>(i0) * ldc +
                                j0 + jp;
                    if (bf16)
                        mk.tileBf16(
                            kl, at,
                            bp16 + static_cast<std::size_t>(p) * kNR *
                                       kl,
                            alpha, ct, ldc, mr, nr);
                    else
                        mk.tile(kl, at,
                                bp + static_cast<std::size_t>(p) * kNR *
                                         kl,
                                alpha, ct, ldc, mr, nr);
                }
            }
        }
    });
}

/** Shared degenerate-shape handling; true when fully handled. */
bool
gemmEarlyOut(int M, int N, int K, float alpha, float beta, float *C,
             int ldc)
{
    if (M <= 0 || N <= 0)
        return true;
    if (alpha == 0.0f || K <= 0) {
        // Standard BLAS early-out: the product contributes nothing, so
        // only the beta scaling of C remains — no packing, no k loop.
        applyBeta(M, 0, N, beta, C, ldc);
        return true;
    }
    return false;
}

} // namespace

// --- kernel selection ---

const char *
gemmKernelName(GemmKernel kernel)
{
    switch (kernel) {
      case GemmKernel::Auto:
        return "auto";
      case GemmKernel::Avx2:
        return "avx2";
      case GemmKernel::Generic:
        return "generic";
      case GemmKernel::Scalar:
        return "scalar";
    }
    return "?";
}

bool
parseGemmKernel(std::string_view text, GemmKernel &out)
{
    // Mirrors the SD_CONV_ALGO hardening: the whole string must be
    // exactly one canonical name — "AVX2", " avx2" and "avx" are
    // rejected, not coerced.
    for (GemmKernel k : {GemmKernel::Auto, GemmKernel::Avx2,
                         GemmKernel::Generic, GemmKernel::Scalar}) {
        if (text == gemmKernelName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

GemmKernel
defaultGemmKernel()
{
    if (const char *env = std::getenv("SD_GEMM_KERNEL")) {
        GemmKernel k;
        if (!parseGemmKernel(env, k))
            fatal("SD_GEMM_KERNEL=", env, " is not a GEMM kernel "
                  "(valid: auto avx2 generic scalar)");
        return k;
    }
    return GemmKernel::Auto;
}

void
setGemmKernel(GemmKernel kernel)
{
    g_gemm_kernel.store(static_cast<int>(kernel),
                        std::memory_order_relaxed);
}

GemmKernel
gemmKernel()
{
    const int v = g_gemm_kernel.load(std::memory_order_relaxed);
    if (v >= 0)
        return static_cast<GemmKernel>(v);
    // First use: resolve from the environment. A concurrent first use
    // races benignly — defaultGemmKernel() is deterministic.
    const GemmKernel d = defaultGemmKernel();
    g_gemm_kernel.store(static_cast<int>(d),
                        std::memory_order_relaxed);
    return d;
}

GemmKernel
resolveGemmKernel(GemmKernel requested)
{
    switch (requested) {
      case GemmKernel::Generic:
      case GemmKernel::Scalar:
        return requested;
      case GemmKernel::Avx2:
        if (!cpuHasAvx2Fma())
            fatal("SD_GEMM_KERNEL=avx2 forced but this CPU has no "
                  "AVX2+FMA (use auto or generic)");
        return requested;
      case GemmKernel::Auto:
        break;
    }
    return cpuHasAvx2Fma() ? GemmKernel::Avx2 : GemmKernel::Generic;
}

std::uint64_t
gemmScratchAllocs()
{
    return g_scratch_allocs.load(std::memory_order_relaxed);
}

GemmKernelModel
gemmKernelModel(GemmKernel kernel)
{
    switch (resolveGemmKernel(kernel)) {
      case GemmKernel::Avx2:
        // 8-lane FMA, two issues per cycle (Haswell onward).
        return {"avx2", 8, 2};
      case GemmKernel::Scalar:
        // One scalar multiply + add per cycle.
        return {"scalar", 1, 1};
      case GemmKernel::Generic:
      case GemmKernel::Auto:
        break;
    }
    // Baseline-ISA auto-vectorization: 4 lanes, one multiply + one
    // add per cycle (no FMA contraction at default flags).
    return {"generic", 4, 1};
}

// --- precision preset ---

const char *
gemmPrecisionName(GemmPrecision p)
{
    switch (p) {
      case GemmPrecision::Sp:
        return "sp";
      case GemmPrecision::Hp:
        return "hp";
    }
    return "?";
}

bool
parseGemmPrecision(std::string_view text, GemmPrecision &out)
{
    for (GemmPrecision p : {GemmPrecision::Sp, GemmPrecision::Hp}) {
        if (text == gemmPrecisionName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

GemmPrecision
defaultGemmPrecision()
{
    if (const char *env = std::getenv("SD_GEMM_PRECISION")) {
        GemmPrecision p;
        if (!parseGemmPrecision(env, p))
            fatal("SD_GEMM_PRECISION=", env, " is not a GEMM "
                  "precision preset (valid: sp hp)");
        return p;
    }
    return GemmPrecision::Sp;
}

void
setGemmPrecision(GemmPrecision p)
{
    g_gemm_precision.store(static_cast<int>(p),
                           std::memory_order_relaxed);
}

GemmPrecision
gemmPrecision()
{
    const int v = g_gemm_precision.load(std::memory_order_relaxed);
    if (v >= 0)
        return static_cast<GemmPrecision>(v);
    const GemmPrecision d = defaultGemmPrecision();
    g_gemm_precision.store(static_cast<int>(d),
                           std::memory_order_relaxed);
    return d;
}

// --- the GEMMs ---

void
sgemm(GemmOp opA, GemmOp opB, int M, int N, int K, float alpha,
      const float *A, int lda, const float *B, int ldb, float beta,
      float *C, int ldc)
{
    if (gemmEarlyOut(M, N, K, alpha, beta, C, ldc))
        return;
    if (N == 1) {
        gemv(opA, M, K, alpha, A, lda, B, ldb, beta, C, ldc);
        return;
    }
    switch (resolveGemmKernel(gemmKernel())) {
      case GemmKernel::Scalar:
        sgemmScalar(opA, opB, M, N, K, alpha, A, lda, B, ldb, beta, C,
                    ldc);
        return;
      case GemmKernel::Avx2:
        sgemmPacked(detail::avx2MicroKernel(), false, opA, opB, M, N,
                    K, alpha, A, lda, B, ldb, beta, C, ldc);
        return;
      case GemmKernel::Generic:
      case GemmKernel::Auto:
        break;
    }
    sgemmPacked(detail::genericMicroKernel(), false, opA, opB, M, N, K,
                alpha, A, lda, B, ldb, beta, C, ldc);
}

void
sgemmBf16(GemmOp opA, GemmOp opB, int M, int N, int K, float alpha,
          const float *A, int lda, const float *B, int ldb, float beta,
          float *C, int ldc)
{
    if (gemmEarlyOut(M, N, K, alpha, beta, C, ldc))
        return;
    // Every shape goes through the packed path — bf16 has no gemv
    // special case, and a resolved Scalar level runs the generic
    // microkernel (the scalar loop has no bf16 form).
    const GemmKernel k = resolveGemmKernel(gemmKernel());
    const detail::MicroKernel &mk = k == GemmKernel::Avx2
                                        ? detail::avx2MicroKernel()
                                        : detail::genericMicroKernel();
    sgemmPacked(mk, true, opA, opB, M, N, K, alpha, A, lda, B, ldb,
                beta, C, ldc);
}

void
engineGemm(GemmOp opA, GemmOp opB, int M, int N, int K, float alpha,
           const float *A, int lda, const float *B, int ldb, float beta,
           float *C, int ldc)
{
    if (gemmPrecision() == GemmPrecision::Hp)
        sgemmBf16(opA, opB, M, N, K, alpha, A, lda, B, ldb, beta, C,
                  ldc);
    else
        sgemm(opA, opB, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc);
}

void
im2col(const Layer &l, const float *in, int c0, int channels,
       float *cols)
{
    const int out_hw = l.outH * l.outW;
    const std::size_t khw =
        static_cast<std::size_t>(l.kernelH) * l.kernelW;
    parallelFor(static_cast<std::size_t>(channels), [&](std::size_t ci) {
        const int c = c0 + static_cast<int>(ci);
        const float *src =
            in + (static_cast<std::size_t>(c) * l.inH) * l.inW;
        float *dst = cols + ci * khw * out_hw;
        for (int kh = 0; kh < l.kernelH; ++kh) {
            for (int kw = 0; kw < l.kernelW; ++kw) {
                float *row = dst;
                dst += out_hw;
                for (int oh = 0; oh < l.outH; ++oh) {
                    const int h = oh * l.strideH - l.padH + kh;
                    float *out = row + static_cast<std::size_t>(oh) *
                                 l.outW;
                    if (h < 0 || h >= l.inH) {
                        std::fill(out, out + l.outW, 0.0f);
                        continue;
                    }
                    const float *irow =
                        src + static_cast<std::size_t>(h) * l.inW;
                    for (int ow = 0; ow < l.outW; ++ow) {
                        const int wi = ow * l.strideW - l.padW + kw;
                        out[ow] = (wi < 0 || wi >= l.inW)
                            ? 0.0f
                            : irow[wi];
                    }
                }
            }
        }
    });
}

void
col2im(const Layer &l, const float *cols, int c0, int channels,
       float *in)
{
    const int out_hw = l.outH * l.outW;
    const std::size_t khw =
        static_cast<std::size_t>(l.kernelH) * l.kernelW;
    // Rows (c, kh, kw) only ever scatter into channel c, so channels
    // are an exact parallel partition; within a channel the (kh, kw,
    // oh, ow) order is fixed, keeping the accumulation deterministic.
    parallelFor(static_cast<std::size_t>(channels), [&](std::size_t ci) {
        const int c = c0 + static_cast<int>(ci);
        float *dst = in + (static_cast<std::size_t>(c) * l.inH) * l.inW;
        const float *src = cols + ci * khw * out_hw;
        for (int kh = 0; kh < l.kernelH; ++kh) {
            for (int kw = 0; kw < l.kernelW; ++kw) {
                const float *row = src;
                src += out_hw;
                for (int oh = 0; oh < l.outH; ++oh) {
                    const int h = oh * l.strideH - l.padH + kh;
                    if (h < 0 || h >= l.inH)
                        continue;
                    float *drow =
                        dst + static_cast<std::size_t>(h) * l.inW;
                    const float *srow =
                        row + static_cast<std::size_t>(oh) * l.outW;
                    for (int ow = 0; ow < l.outW; ++ow) {
                        const int wi = ow * l.strideW - l.padW + kw;
                        if (wi >= 0 && wi < l.inW)
                            drow[wi] += srow[ow];
                    }
                }
            }
        }
    });
}

} // namespace sd::dnn
