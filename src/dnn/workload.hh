/**
 * @file
 * Workload analysis of a network: per-layer, per-training-step (FP/BP/WG)
 * FLOP and byte-traffic breakdowns by computational kernel, matching the
 * paper's Section 2.3 analysis (Figures 1, 4 and 5).
 *
 * FLOP accounting conventions (paper-compatible):
 *  - a fused multiply-accumulate counts as 2 FLOPs;
 *  - feature accumulation counts 1 FLOP per add;
 *  - activation functions count 1 FLOP per element;
 *  - sampling counts window-size FLOPs per output element.
 */

#ifndef SCALEDEEP_DNN_WORKLOAD_HH
#define SCALEDEEP_DNN_WORKLOAD_HH

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "core/units.hh"
#include "dnn/network.hh"

namespace sd::dnn {

/** Training steps. Evaluation executes only Fp. */
enum class Step { Fp = 0, Bp = 1, Wg = 2 };

inline constexpr std::array<Step, 3> kAllSteps = {Step::Fp, Step::Bp,
                                                  Step::Wg};

const char *stepName(Step step);

/** The computational kernels of Figure 5. */
enum class KernelClass
{
    NdConv = 0,
    MatMul,
    NdAccum,
    VecEltMul,
    Sampling,
    ActFn,
    NumClasses,
};

const char *kernelClassName(KernelClass k);

/** The layer classes used in the Figure 4 breakdown. */
enum class LayerClass { InitialConv, MidConv, Fc, Samp, Other };

const char *layerClassName(LayerClass c);

/** FLOPs and memory traffic attributed to one kernel in one step. */
struct KernelCost
{
    KernelClass kernel = KernelClass::NdConv;
    double flops = 0.0;
    double bytes = 0.0;
};

/** The cost of one step (FP, BP or WG) of one layer, per image. */
struct StepWorkload
{
    std::vector<KernelCost> kernels;

    double flops() const;
    double bytes() const;
    /** Bytes/FLOP; 0 when there are no FLOPs. */
    double bytesPerFlop() const;

    /**
     * Bytes of the layer's *primary* data (features + weights) only,
     * excluding intermediate partial-sum accumulation and activation
     * traffic. This is the paper's Figure 4 per-layer B/F numerator.
     */
    double dataBytes() const;
};

/** Full per-image workload of one layer. */
struct LayerWorkload
{
    LayerId id = -1;
    LayerClass cls = LayerClass::Other;
    std::array<StepWorkload, 3> steps;

    const StepWorkload &step(Step s) const
    { return steps[static_cast<std::size_t>(s)]; }

    double trainingFlops() const;       ///< FP + BP + WG
    double evaluationFlops() const;     ///< FP only

    /** Feature bytes touched (inputs + outputs) in FP. */
    double featureBytes = 0.0;
    /** Weight bytes of this layer. */
    double weightBytes = 0.0;
};

/** Aggregate FLOPs/bytes of one kernel class over the whole network. */
struct KernelSummary
{
    double flops = 0.0;
    double bytes = 0.0;
};

/**
 * Analyzes a Network once at construction; all queries are cheap.
 */
class Workload
{
  public:
    explicit Workload(const Network &net,
                      Precision precision = Precision::Single);

    const Network &network() const { return *net_; }
    Precision precision() const { return precision_; }

    const std::vector<LayerWorkload> &layers() const { return layers_; }
    const LayerWorkload &layer(LayerId id) const;

    /** Network-total FLOPs for one step, per image. */
    double totalFlops(Step step) const;
    /** FP+BP+WG FLOPs per training image. */
    double trainingFlops() const;
    /** FP FLOPs per evaluated image (Figure 1's metric). */
    double evaluationFlops() const;

    /** Per-kernel-class aggregate over FP+BP+WG (Figure 5). */
    std::map<KernelClass, KernelSummary> kernelSummary() const;

    /** Per-layer-class aggregate of step FLOPs/bytes (Figure 4). */
    struct ClassSummary
    {
        double fpBpFlops = 0.0, fpBpBytes = 0.0;
        double wgFlops = 0.0, wgBytes = 0.0;
        /** Primary-data (feature + weight) bytes, Figure 4 style. */
        double fpBpDataBytes = 0.0, wgDataBytes = 0.0;
        double featureBytes = 0.0, weightBytes = 0.0;
        int layerCount = 0;

        double fpBpDataBF() const
        { return fpBpFlops > 0 ? fpBpDataBytes / fpBpFlops : 0.0; }
        double wgDataBF() const
        { return wgFlops > 0 ? wgDataBytes / wgFlops : 0.0; }
    };
    std::map<LayerClass, ClassSummary> classSummary() const;

  private:
    void analyzeLayer(const Layer &l);

    const Network *net_;
    Precision precision_;
    std::uint64_t elemBytes_;
    std::vector<LayerWorkload> layers_;
};

/**
 * Classify a conv layer as initial vs mid following the paper's split:
 * initial CONV layers have few, large features; we use output feature
 * size > @p threshold (default 20) as the boundary, which reproduces the
 * paper's C1-C2 vs C3-C5 split for OverFeat and AlexNet.
 */
LayerClass classifyLayer(const Layer &l, int threshold = 20);

} // namespace sd::dnn

#endif // SCALEDEEP_DNN_WORKLOAD_HH
