#include "dnn/workload.hh"

#include "core/logging.hh"

namespace sd::dnn {

const char *
stepName(Step step)
{
    switch (step) {
      case Step::Fp: return "FP";
      case Step::Bp: return "BP";
      case Step::Wg: return "WG";
    }
    return "?";
}

const char *
kernelClassName(KernelClass k)
{
    switch (k) {
      case KernelClass::NdConv: return "nD-Convolution";
      case KernelClass::MatMul: return "Matrix Multiply";
      case KernelClass::NdAccum: return "nD-Accumulate";
      case KernelClass::VecEltMul: return "Vector element-wise multiply";
      case KernelClass::Sampling: return "Sampling";
      case KernelClass::ActFn: return "Activation Fn.";
      default: return "?";
    }
}

const char *
layerClassName(LayerClass c)
{
    switch (c) {
      case LayerClass::InitialConv: return "Initial Conv.";
      case LayerClass::MidConv: return "Mid Conv.";
      case LayerClass::Fc: return "Fully Conn.";
      case LayerClass::Samp: return "Sub Samp.";
      case LayerClass::Other: return "Other";
    }
    return "?";
}

double
StepWorkload::flops() const
{
    double total = 0.0;
    for (const KernelCost &k : kernels)
        total += k.flops;
    return total;
}

double
StepWorkload::bytes() const
{
    double total = 0.0;
    for (const KernelCost &k : kernels)
        total += k.bytes;
    return total;
}

double
StepWorkload::bytesPerFlop() const
{
    double f = flops();
    return f > 0.0 ? bytes() / f : 0.0;
}

double
StepWorkload::dataBytes() const
{
    double total = 0.0;
    for (const KernelCost &k : kernels) {
        if (k.kernel != KernelClass::NdAccum &&
            k.kernel != KernelClass::ActFn) {
            total += k.bytes;
        }
    }
    return total;
}

double
LayerWorkload::trainingFlops() const
{
    return steps[0].flops() + steps[1].flops() + steps[2].flops();
}

double
LayerWorkload::evaluationFlops() const
{
    return steps[0].flops();
}

LayerClass
classifyLayer(const Layer &l, int threshold)
{
    switch (l.kind) {
      case LayerKind::Conv:
        return l.outH > threshold ? LayerClass::InitialConv
                                  : LayerClass::MidConv;
      case LayerKind::Fc:
        return LayerClass::Fc;
      case LayerKind::Samp:
        return LayerClass::Samp;
      default:
        return LayerClass::Other;
    }
}

Workload::Workload(const Network &net, Precision precision)
    : net_(&net), precision_(precision),
      elemBytes_(bytesPerElement(precision))
{
    layers_.reserve(net.numLayers());
    for (const Layer &l : net.layers())
        analyzeLayer(l);
}

void
Workload::analyzeLayer(const Layer &l)
{
    LayerWorkload w;
    w.id = l.id;
    w.cls = classifyLayer(l);

    const double es = static_cast<double>(elemBytes_);
    const double in_elems = static_cast<double>(l.inputElems());
    const double out_elems = static_cast<double>(l.outputElems());
    const double weights = static_cast<double>(l.weightCount());
    const double macs = static_cast<double>(l.macCount());

    auto &fp = w.steps[0].kernels;
    auto &bp = w.steps[1].kernels;
    auto &wg = w.steps[2].kernels;

    switch (l.kind) {
      case LayerKind::Conv: {
        double in_feats = static_cast<double>(l.inChannels) / l.groups;
        double out_feats = static_cast<double>(l.outChannels) / l.groups;
        // FP: convolve each input feature with each kernel, then
        // accumulate the per-input partial features and apply the
        // activation function.
        fp.push_back({KernelClass::NdConv, 2.0 * macs,
                      (in_elems + weights + out_elems) * es});
        double fp_acc = (in_feats - 1.0) * out_elems;
        fp.push_back({KernelClass::NdAccum, fp_acc, 4.0 * fp_acc});
        fp.push_back({KernelClass::ActFn, out_elems, 8.0 * out_elems});
        // BP: convolve errors with transposed kernels; partial error
        // features accumulate over the layer's output features.
        bp.push_back({KernelClass::NdConv, 2.0 * macs,
                      (in_elems + weights + out_elems) * es});
        double bp_acc = (out_feats - 1.0) * in_elems;
        bp.push_back({KernelClass::NdAccum, bp_acc, 4.0 * bp_acc});
        bp.push_back({KernelClass::ActFn, in_elems, 8.0 * in_elems});
        // WG: correlate FP inputs with BP errors (same MAC count), then
        // accumulate into the gradient buffer.
        wg.push_back({KernelClass::NdConv, 2.0 * macs,
                      (in_elems + out_elems + weights) * es});
        wg.push_back({KernelClass::NdAccum, weights, 4.0 * weights});
        break;
      }
      case LayerKind::Fc: {
        fp.push_back({KernelClass::MatMul, 2.0 * macs,
                      (in_elems + weights + out_elems) * es});
        fp.push_back({KernelClass::ActFn, out_elems, 8.0 * out_elems});
        bp.push_back({KernelClass::MatMul, 2.0 * macs,
                      (out_elems + weights + in_elems) * es});
        // WG is the outer product of the FP input vector and the BP
        // error vector, accumulated into the gradient: an element-wise
        // multiply-add per weight.
        wg.push_back({KernelClass::VecEltMul, 2.0 * weights,
                      8.0 * weights});
        break;
      }
      case LayerKind::Samp: {
        double window = static_cast<double>(l.kernelH) * l.kernelW;
        double fp_flops = out_elems * window;
        fp.push_back({KernelClass::Sampling, fp_flops,
                      (in_elems + out_elems) * es});
        // BP up-samples errors back to the input resolution.
        bp.push_back({KernelClass::Sampling, in_elems,
                      (in_elems + out_elems) * es});
        break;
      }
      case LayerKind::Eltwise: {
        double n = static_cast<double>(l.inputs.size());
        double fp_acc = (n - 1.0) * out_elems;
        fp.push_back({KernelClass::NdAccum, fp_acc, 4.0 * fp_acc});
        fp.push_back({KernelClass::ActFn, out_elems, 8.0 * out_elems});
        bp.push_back({KernelClass::ActFn, in_elems, 8.0 * in_elems});
        break;
      }
      case LayerKind::Concat:
      case LayerKind::Input:
        break;
    }

    w.featureBytes = (in_elems + out_elems) * es;
    w.weightBytes = weights * es;
    layers_.push_back(std::move(w));
}

const LayerWorkload &
Workload::layer(LayerId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= layers_.size())
        panic("Workload: bad layer id ", id);
    return layers_[id];
}

double
Workload::totalFlops(Step step) const
{
    double total = 0.0;
    for (const LayerWorkload &w : layers_)
        total += w.step(step).flops();
    return total;
}

double
Workload::trainingFlops() const
{
    return totalFlops(Step::Fp) + totalFlops(Step::Bp) +
           totalFlops(Step::Wg);
}

double
Workload::evaluationFlops() const
{
    return totalFlops(Step::Fp);
}

std::map<KernelClass, KernelSummary>
Workload::kernelSummary() const
{
    std::map<KernelClass, KernelSummary> summary;
    for (const LayerWorkload &w : layers_) {
        for (const StepWorkload &s : w.steps) {
            for (const KernelCost &k : s.kernels) {
                summary[k.kernel].flops += k.flops;
                summary[k.kernel].bytes += k.bytes;
            }
        }
    }
    return summary;
}

std::map<LayerClass, Workload::ClassSummary>
Workload::classSummary() const
{
    std::map<LayerClass, ClassSummary> summary;
    for (const LayerWorkload &w : layers_) {
        if (w.cls == LayerClass::Other)
            continue;
        ClassSummary &c = summary[w.cls];
        c.fpBpFlops += w.step(Step::Fp).flops() + w.step(Step::Bp).flops();
        c.fpBpBytes += w.step(Step::Fp).bytes() + w.step(Step::Bp).bytes();
        c.wgFlops += w.step(Step::Wg).flops();
        c.wgBytes += w.step(Step::Wg).bytes();
        c.fpBpDataBytes += w.step(Step::Fp).dataBytes() +
                           w.step(Step::Bp).dataBytes();
        c.wgDataBytes += w.step(Step::Wg).dataBytes();
        c.featureBytes += w.featureBytes;
        c.weightBytes += w.weightBytes;
        ++c.layerCount;
    }
    return summary;
}

} // namespace sd::dnn
