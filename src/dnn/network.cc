#include "dnn/network.hh"

#include <set>

#include "core/logging.hh"

namespace sd::dnn {

const Layer &
Network::layer(LayerId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= layers_.size())
        panic("Network ", name_, ": bad layer id ", id);
    return layers_[id];
}

std::vector<LayerId>
Network::consumers(LayerId id) const
{
    std::vector<LayerId> out;
    for (const Layer &l : layers_) {
        for (LayerId in : l.inputs) {
            if (in == id) {
                out.push_back(l.id);
                break;
            }
        }
    }
    return out;
}

const Layer &
Network::outputLayer() const
{
    if (layers_.empty())
        panic("Network ", name_, ": empty");
    return layers_.back();
}

LayerId
Network::addLayer(Layer layer)
{
    layer.id = static_cast<LayerId>(layers_.size());
    for (LayerId in : layer.inputs) {
        if (in < 0 || in >= layer.id)
            panic("Network ", name_, ": layer ", layer.name,
                  " references non-existent producer ", in);
    }
    layers_.push_back(std::move(layer));
    return layers_.back().id;
}

NetworkSummary
Network::summary() const
{
    NetworkSummary s;
    std::set<std::string> conv_groups;
    for (const Layer &l : layers_) {
        switch (l.kind) {
          case LayerKind::Conv:
            if (l.group.empty()) {
                ++s.convLayers;
            } else {
                conv_groups.insert(l.group);
            }
            break;
          case LayerKind::Fc:
            ++s.fcLayers;
            break;
          case LayerKind::Samp:
            ++s.sampLayers;
            break;
          default:
            break;
        }
        if (l.isCompute())
            s.neurons += l.outputElems();
        s.weights += l.weightCount();
        s.connections += l.macCount();
    }
    s.convLayers += static_cast<int>(conv_groups.size());
    return s;
}

std::uint64_t
Network::totalMacs() const
{
    std::uint64_t total = 0;
    for (const Layer &l : layers_)
        total += l.macCount();
    return total;
}

std::uint64_t
Network::totalWeights() const
{
    std::uint64_t total = 0;
    for (const Layer &l : layers_)
        total += l.weightCount();
    return total;
}

NetworkBuilder::NetworkBuilder(std::string name, int channels, int height,
                               int width)
    : net_(std::move(name))
{
    if (channels <= 0 || height <= 0 || width <= 0)
        fatal("NetworkBuilder: invalid input dimensions");
    Layer in;
    in.name = "input";
    in.kind = LayerKind::Input;
    in.inChannels = in.outChannels = channels;
    in.inH = in.outH = height;
    in.inW = in.outW = width;
    net_.addLayer(std::move(in));
}

LayerId
NetworkBuilder::conv(const std::string &name, LayerId in, int out_channels,
                     int kernel, int stride, int pad, int groups,
                     Activation act, const std::string &group)
{
    const Layer &p = net_.layer(in);
    Layer l;
    l.name = name;
    l.kind = LayerKind::Conv;
    l.inputs = {in};
    l.group = group;
    l.kernelH = l.kernelW = kernel;
    l.strideH = l.strideW = stride;
    l.padH = l.padW = pad;
    l.groups = groups;
    l.act = act;
    l.inChannels = p.outChannels;
    l.inH = p.outH;
    l.inW = p.outW;
    if (kernel <= 0 || stride <= 0 || pad < 0 || groups <= 0)
        fatal("conv ", name, ": invalid parameters");
    if (l.inChannels % groups != 0 || out_channels % groups != 0)
        fatal("conv ", name, ": channels not divisible by groups");
    l.outChannels = out_channels;
    l.outH = (l.inH + 2 * pad - kernel) / stride + 1;
    l.outW = (l.inW + 2 * pad - kernel) / stride + 1;
    if (l.outH <= 0 || l.outW <= 0)
        fatal("conv ", name, ": kernel larger than padded input");
    return net_.addLayer(std::move(l));
}

LayerId
NetworkBuilder::addPool(const std::string &name, LayerId in, int window,
                        int stride, int pad, SampKind kind)
{
    const Layer &p = net_.layer(in);
    Layer l;
    l.name = name;
    l.kind = LayerKind::Samp;
    l.inputs = {in};
    l.kernelH = l.kernelW = window;
    l.strideH = l.strideW = stride;
    l.padH = l.padW = pad;
    l.sampKind = kind;
    l.inChannels = p.outChannels;
    l.inH = p.outH;
    l.inW = p.outW;
    if (window <= 0 || stride <= 0 || pad < 0)
        fatal("pool ", name, ": invalid parameters");
    l.outChannels = l.inChannels;
    l.outH = (l.inH + 2 * pad - window) / stride + 1;
    l.outW = (l.inW + 2 * pad - window) / stride + 1;
    if (l.outH <= 0 || l.outW <= 0)
        fatal("pool ", name, ": window larger than padded input");
    return net_.addLayer(std::move(l));
}

LayerId
NetworkBuilder::maxPool(const std::string &name, LayerId in, int window,
                        int stride, int pad)
{
    return addPool(name, in, window, stride, pad, SampKind::Max);
}

LayerId
NetworkBuilder::avgPool(const std::string &name, LayerId in, int window,
                        int stride, int pad)
{
    return addPool(name, in, window, stride, pad, SampKind::Average);
}

LayerId
NetworkBuilder::fc(const std::string &name, LayerId in, int out_neurons,
                   Activation act)
{
    const Layer &p = net_.layer(in);
    Layer l;
    l.name = name;
    l.kind = LayerKind::Fc;
    l.inputs = {in};
    l.act = act;
    l.inChannels = p.outChannels;
    l.inH = p.outH;
    l.inW = p.outW;
    if (out_neurons <= 0)
        fatal("fc ", name, ": invalid neuron count");
    l.outChannels = out_neurons;
    l.outH = 1;
    l.outW = 1;
    return net_.addLayer(std::move(l));
}

LayerId
NetworkBuilder::eltwise(const std::string &name, std::vector<LayerId> ins,
                        Activation act, const std::string &group)
{
    if (ins.size() < 2)
        fatal("eltwise ", name, ": needs >= 2 inputs");
    const Layer &first = net_.layer(ins[0]);
    for (LayerId id : ins) {
        const Layer &p = net_.layer(id);
        if (p.outChannels != first.outChannels || p.outH != first.outH ||
            p.outW != first.outW) {
            fatal("eltwise ", name, ": input shape mismatch between ",
                  first.name, " and ", p.name);
        }
    }
    Layer l;
    l.name = name;
    l.kind = LayerKind::Eltwise;
    l.inputs = std::move(ins);
    l.group = group;
    l.act = act;
    l.inChannels = first.outChannels;
    l.inH = first.outH;
    l.inW = first.outW;
    l.outChannels = first.outChannels;
    l.outH = first.outH;
    l.outW = first.outW;
    return net_.addLayer(std::move(l));
}

LayerId
NetworkBuilder::concat(const std::string &name, std::vector<LayerId> ins,
                       const std::string &group)
{
    if (ins.empty())
        fatal("concat ", name, ": needs >= 1 input");
    const Layer &first = net_.layer(ins[0]);
    int channels = 0;
    for (LayerId id : ins) {
        const Layer &p = net_.layer(id);
        if (p.outH != first.outH || p.outW != first.outW)
            fatal("concat ", name, ": spatial size mismatch at ", p.name);
        channels += p.outChannels;
    }
    Layer l;
    l.name = name;
    l.kind = LayerKind::Concat;
    l.inputs = std::move(ins);
    l.group = group;
    l.inChannels = channels;
    l.inH = first.outH;
    l.inW = first.outW;
    l.outChannels = channels;
    l.outH = first.outH;
    l.outW = first.outW;
    return net_.addLayer(std::move(l));
}

Network
NetworkBuilder::build()
{
    if (built_)
        panic("NetworkBuilder: build() called twice");
    built_ = true;
    return std::move(net_);
}

} // namespace sd::dnn
