/**
 * @file
 * Single-precision matrix multiply — a register-blocked packed
 * microkernel with CPUID-based runtime dispatch — plus the bf16
 * (HP-preset) storage variant and the im2col / col2im lowering used to
 * express the convolution kernels as GEMM, the same decomposition the
 * paper's cuDNN/Neon baselines use (Section 8).
 *
 * Kernel dispatch
 * ---------------
 * sgemm() selects one of three implementations, resolved once per
 * process from the SD_GEMM_KERNEL environment variable (strict parse,
 * fatal on an unknown name, mirroring SD_CONV_ALGO) or set by
 * front-ends via --gemm-kernel:
 *
 *  - avx2:    the 6x16 packed microkernel with explicit AVX2/FMA
 *             intrinsics (x86 with AVX2+FMA only; forcing it on other
 *             hosts is fatal).
 *  - generic: the same 6x16 packed microkernel written as portable
 *             scalar C (auto-vectorizes to the baseline ISA).
 *  - scalar:  the pre-microkernel cache-blocked loop, retained as the
 *             measured baseline and a second oracle.
 *  - auto:    avx2 when the CPU supports it, else generic.
 *
 * Determinism: every kernel accumulates each C element in ascending k
 * order over fixed kc blocks, and the parallel grain (disjoint column
 * stripes of C) depends only on the problem shape — results are
 * bit-identical for every jobs value *within* a kernel. Different
 * kernels round differently (FMA vs separate multiply+add) and agree
 * to a K-scaled ulp tolerance, verified in tests/test_gemm.cc.
 *
 * Packing scratch is thread-local and grows monotonically, so the
 * steady state performs no allocation (gemmScratchAllocs() exposes the
 * grow count; bench/micro_parallel asserts it stays flat).
 *
 * bf16 storage (the paper's HP arithmetic preset)
 * -----------------------------------------------
 * sgemmBf16() packs both operands with round-to-nearest-even bf16
 * rounding on the fly and accumulates in fp32 — the low-precision
 * training recipe of Das et al. (PAPERS.md). B micro-panels are stored
 * as 16-bit words (half the panel traffic, double the kc block at the
 * same cache footprint); A micro-panels are rounded to bf16 values but
 * stored pre-widened so the broadcast stays one load. engineGemm()
 * routes on the process-global GemmPrecision (SD_GEMM_PRECISION) so
 * the reference engine's conv/fc/Winograd lowerings flip between SP
 * and HP wholesale.
 */

#ifndef SCALEDEEP_DNN_GEMM_HH
#define SCALEDEEP_DNN_GEMM_HH

#include <bit>
#include <cstdint>
#include <string_view>

#include "dnn/layer.hh"

namespace sd::dnn {

/** Whether an sgemm operand is used as stored or transposed. */
enum class GemmOp { NoTrans, Trans };

// --- kernel selection ---

/** Which sgemm implementation runs (see the file comment). */
enum class GemmKernel { Auto, Avx2, Generic, Scalar };

/** Lower-case canonical name ("auto", "avx2", "generic", "scalar"). */
const char *gemmKernelName(GemmKernel kernel);

/**
 * Strict parse of a GemmKernel name, std::from_chars style: the whole
 * string must be exactly one canonical lower-case name. Returns false
 * (leaving @p out untouched) on anything else.
 */
bool parseGemmKernel(std::string_view text, GemmKernel &out);

/**
 * The kernel front-ends should adopt: SD_GEMM_KERNEL when set — fatal
 * with the valid set listed if it does not parse — else Auto.
 */
GemmKernel defaultGemmKernel();

/** Set the process-global GEMM kernel. */
void setGemmKernel(GemmKernel kernel);

/**
 * Current process-global GEMM kernel. Initialized from
 * defaultGemmKernel() on first use, so SD_GEMM_KERNEL reaches every
 * GEMM call site (tests included) without per-driver plumbing.
 */
GemmKernel gemmKernel();

/**
 * The concrete kernel @p requested resolves to: Auto picks Avx2 when
 * the CPU supports AVX2+FMA and Generic otherwise; a forced Avx2 on a
 * host without AVX2+FMA is fatal (never a silent fallback). Never
 * returns Auto.
 */
GemmKernel resolveGemmKernel(GemmKernel requested);

/** True when this CPU executes the AVX2/FMA microkernel. */
bool cpuHasAvx2Fma();

/**
 * Times a thread-local packing buffer grew (process-wide, monotonic).
 * Steady-state GEMM calls on warmed threads must not move this —
 * asserted by bench/micro_parallel and tests/test_gemm.cc.
 */
std::uint64_t gemmScratchAllocs();

/**
 * Peak-FLOPs model of one *resolved* dispatch level, used by the
 * roofline report (dnn/roofline.hh): fp32 lanes per issue and FMA-class
 * issues per cycle, so peak = lanes * 2 * issues * clock * cores.
 * Generic models the baseline-ISA auto-vectorization (4 lanes, one
 * multiply + one add per cycle); Scalar models one multiply + add.
 */
struct GemmKernelModel
{
    const char *name;       ///< gemmKernelName of the level
    int simdLanes;          ///< fp32 elements per vector issue
    int issuesPerCycle;     ///< FMA-class issues per cycle
    /** Peak fp32 FLOPs per cycle per core under this model. */
    double flopsPerCycle() const { return 2.0 * simdLanes * issuesPerCycle; }
};

/** Model for @p kernel (Auto resolves first). */
GemmKernelModel gemmKernelModel(GemmKernel kernel);

// --- precision preset (paper Section 5 / Figure 14) ---

/**
 * Arithmetic preset of the reference-engine GEMM lowerings: Sp runs
 * fp32 end to end, Hp stores GEMM operands as bf16 (fp32 accumulate)
 * via sgemmBf16 — the reference-engine analogue of the paper's HP
 * node preset. Resolved from SD_GEMM_PRECISION ("sp"/"hp", strict
 * parse, fatal on unknown) and exposed as --gemm-precision.
 */
enum class GemmPrecision { Sp, Hp };

/** Lower-case canonical name ("sp", "hp"). */
const char *gemmPrecisionName(GemmPrecision p);

/** Strict parse, mirroring parseGemmKernel(). */
bool parseGemmPrecision(std::string_view text, GemmPrecision &out);

/** SD_GEMM_PRECISION when set (fatal if unparsable), else Sp. */
GemmPrecision defaultGemmPrecision();

/** Set the process-global GEMM precision preset. */
void setGemmPrecision(GemmPrecision p);

/** Current process-global preset (lazily resolved from the env). */
GemmPrecision gemmPrecision();

// --- bf16 scalar conversions ---

/** bf16 storage word: the top 16 bits of an IEEE-754 binary32. */
using Bf16 = std::uint16_t;

/** Round @p v to bf16 with round-to-nearest-even (NaN stays NaN).
 * Inline and branch-free so packing loops vectorize. */
inline Bf16
floatToBf16(float v)
{
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
    // Round to nearest, ties to even; overflow correctly carries into
    // the exponent (rounding up to infinity at the top of the range).
    const std::uint32_t rounded =
        (bits + 0x7fffu + ((bits >> 16) & 1u)) >> 16;
    // NaN: truncate but force a mantissa bit so it stays a NaN.
    const std::uint32_t quiet = (bits >> 16) | 0x0040u;
    return static_cast<Bf16>(
        (bits & 0x7fffffffu) > 0x7f800000u ? quiet : rounded);
}

/** Exact widening of a bf16 word back to fp32. */
inline float
bf16ToFloat(Bf16 v)
{
    return std::bit_cast<float>(static_cast<std::uint32_t>(v) << 16);
}

// --- the GEMMs ---

/**
 * C = alpha * op(A) * op(B) + beta * C over row-major matrices.
 *
 * op(A) is M x K, op(B) is K x N, C is M x N; lda/ldb/ldc are the
 * leading (row) strides of the matrices as stored. beta == 0 assigns
 * (C need not be initialized), beta == 1 accumulates. alpha == 0 (or
 * K <= 0) takes the standard BLAS early-out: C is only scaled by
 * beta, A and B are never read and no panel packing happens. N == 1
 * takes a gemv fast path shared by every dispatch level.
 */
void sgemm(GemmOp opA, GemmOp opB, int M, int N, int K, float alpha,
           const float *A, int lda, const float *B, int ldb, float beta,
           float *C, int ldc);

/**
 * sgemm with bf16 operand storage: A and B are fp32 in memory but are
 * rounded to bf16 (round-to-nearest-even) as they are packed, and the
 * products accumulate in fp32 — C, alpha and beta stay fp32. Same
 * shape/stride contract and the same per-kernel jobs determinism as
 * sgemm(). Dispatches Avx2/Generic; a resolved Scalar level runs the
 * generic microkernel (the scalar loop has no bf16 form). All N go
 * through the packed path (no gemv special case).
 */
void sgemmBf16(GemmOp opA, GemmOp opB, int M, int N, int K, float alpha,
               const float *A, int lda, const float *B, int ldb,
               float beta, float *C, int ldc);

/**
 * The reference-engine entry point: sgemm() under GemmPrecision::Sp,
 * sgemmBf16() under GemmPrecision::Hp. Every conv/fc/Winograd GEMM
 * lowering calls this, so the HP preset flips the whole engine.
 */
void engineGemm(GemmOp opA, GemmOp opB, int M, int N, int K, float alpha,
                const float *A, int lda, const float *B, int ldb,
                float beta, float *C, int ldc);

/**
 * Expand channels [c0, c0 + channels) of the CHW input @p in of layer
 * @p l into the (channels * kernelH * kernelW) x (outH * outW) patch
 * matrix @p cols. Out-of-bounds (padding) taps become 0. Row order is
 * (channel, kh, kw) — matching the weight layout — and column order
 * is (oh, ow). Batched (NCHW) callers pass the per-image base pointer
 * `in + n * inputElems`; images are independent patch matrices.
 */
void im2col(const Layer &l, const float *in, int c0, int channels,
            float *cols);

/**
 * Inverse scatter of im2col: accumulate the patch matrix @p cols into
 * channels [c0, c0 + channels) of @p in (+=; callers zero the tensor
 * first). Used by the convolution data gradient.
 */
void col2im(const Layer &l, const float *cols, int c0, int channels,
            float *in);

} // namespace sd::dnn

#endif // SCALEDEEP_DNN_GEMM_HH
