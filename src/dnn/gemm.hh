/**
 * @file
 * Cache-blocked single-precision matrix multiply plus the im2col /
 * col2im lowering used to express the convolution kernels as GEMM —
 * the same decomposition the paper's cuDNN/Neon baselines use
 * (Section 8) and the standard recipe for CPU reference kernels.
 *
 * sgemm() parallelizes over disjoint column stripes of C through the
 * core parallel runtime; every C element is accumulated in ascending
 * k order regardless of the jobs value or stripe boundaries, so
 * results are bit-identical for any worker count.
 */

#ifndef SCALEDEEP_DNN_GEMM_HH
#define SCALEDEEP_DNN_GEMM_HH

#include "dnn/layer.hh"

namespace sd::dnn {

/** Whether an sgemm operand is used as stored or transposed. */
enum class GemmOp { NoTrans, Trans };

/**
 * C = alpha * op(A) * op(B) + beta * C over row-major matrices.
 *
 * op(A) is M x K, op(B) is K x N, C is M x N; lda/ldb/ldc are the
 * leading (row) strides of the matrices as stored. beta == 0 assigns
 * (C need not be initialized), beta == 1 accumulates. alpha == 0 (or
 * K <= 0) takes the standard BLAS early-out: C is only scaled by
 * beta, A and B are never read and no panel packing happens.
 */
void sgemm(GemmOp opA, GemmOp opB, int M, int N, int K, float alpha,
           const float *A, int lda, const float *B, int ldb, float beta,
           float *C, int ldc);

/**
 * Expand channels [c0, c0 + channels) of the CHW input @p in of layer
 * @p l into the (channels * kernelH * kernelW) x (outH * outW) patch
 * matrix @p cols. Out-of-bounds (padding) taps become 0. Row order is
 * (channel, kh, kw) — matching the weight layout — and column order
 * is (oh, ow). Batched (NCHW) callers pass the per-image base pointer
 * `in + n * inputElems`; images are independent patch matrices.
 */
void im2col(const Layer &l, const float *in, int c0, int channels,
            float *cols);

/**
 * Inverse scatter of im2col: accumulate the patch matrix @p cols into
 * channels [c0, c0 + channels) of @p in (+=; callers zero the tensor
 * first). Used by the convolution data gradient.
 */
void col2im(const Layer &l, const float *cols, int c0, int channels,
            float *in);

} // namespace sd::dnn

#endif // SCALEDEEP_DNN_GEMM_HH
