#include "dnn/layer.hh"

#include "core/logging.hh"

namespace sd::dnn {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Input: return "input";
      case LayerKind::Conv: return "conv";
      case LayerKind::Samp: return "samp";
      case LayerKind::Fc: return "fc";
      case LayerKind::Eltwise: return "eltwise";
      case LayerKind::Concat: return "concat";
    }
    return "?";
}

const char *
activationName(Activation act)
{
    switch (act) {
      case Activation::None: return "none";
      case Activation::ReLU: return "relu";
      case Activation::Tanh: return "tanh";
      case Activation::Sigmoid: return "sigmoid";
    }
    return "?";
}

std::uint64_t
Layer::weightCount() const
{
    switch (kind) {
      case LayerKind::Conv:
        return static_cast<std::uint64_t>(outChannels) *
               (inChannels / groups) * kernelH * kernelW;
      case LayerKind::Fc:
        return static_cast<std::uint64_t>(outChannels) * inputElems();
      default:
        return 0;
    }
}

std::uint64_t
Layer::macCount() const
{
    switch (kind) {
      case LayerKind::Conv:
        return static_cast<std::uint64_t>(outChannels) * outH * outW *
               (inChannels / groups) * kernelH * kernelW;
      case LayerKind::Fc:
        return weightCount();
      default:
        return 0;
    }
}

} // namespace sd::dnn
