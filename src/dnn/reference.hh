/**
 * @file
 * Reference (golden-model) implementations of the DNN compute kernels —
 * convolution, pooling, fully-connected, activation — with full forward,
 * backpropagation and weight-gradient support, plus a minibatch SGD
 * training engine.
 *
 * This is the numerical ground truth: the functional ScaleDeep simulator
 * is validated against these kernels, and the training examples use the
 * engine end-to-end ("learning and evaluating deep networks").
 *
 * Tensors are NCHW: every kernel infers the minibatch size from the
 * tensor volume (size / per-image elems), so a rank-3 CHW tensor is the
 * batch-1 special case and all single-image call sites keep working.
 * Weights are [outC, inC/groups, kH, kW] and are shared across the
 * batch. Layers carry no bias terms, matching the paper's weight
 * accounting.
 *
 * Determinism: batched kernels parallelize over disjoint (image,
 * group) output blocks — falling back to the GEMM column stripes
 * within a single image — and weight-gradient accumulation folds the
 * batch in ascending image order, so results are bit-identical for
 * every jobs value (the same contract as core/parallel.hh).
 */

#ifndef SCALEDEEP_DNN_REFERENCE_HH
#define SCALEDEEP_DNN_REFERENCE_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/random.hh"
#include "dnn/memplan.hh"
#include "dnn/network.hh"
#include "dnn/tensor.hh"

namespace sd::dnn {

// --- convolution algorithm selection ---

/**
 * Which implementation the convolution kernels below dispatch to.
 *
 *  - Auto: per-layer heuristic — 3x3 / stride-1 convolutions with at
 *    least kWinogradAutoMinChannels per-group input *and* output
 *    channels go to Winograd (F(4x4,3x3) when both output dimensions
 *    are >= 4, else F(2x2,3x3)); everything else takes im2col + GEMM.
 *  - Naive: the direct loop-nest oracle kernels.
 *  - Im2col: the im2col + blocked-GEMM lowering.
 *  - Winograd2 / Winograd4: force F(2x2,3x3) / F(4x4,3x3) where the
 *    transform applies (3x3, stride 1, pad <= 2); ineligible layers
 *    fall back to im2col. Weight-gradient always runs im2col — the
 *    tile decomposition has no weight-gradient form here (DESIGN.md).
 *
 * The process-global selection defaults to the SD_CONV_ALGO
 * environment variable (fatal on an unrecognized value) and Auto when
 * unset; front-ends expose it as --conv-algo. Within any fixed
 * algorithm, results are bit-identical for every jobs value.
 */
enum class ConvAlgo { Auto, Naive, Im2col, Winograd2, Winograd4 };

/** Per-group channel floor below which Auto skips Winograd: the tile
 * GEMMs are too skinny to amortize the transforms. */
constexpr int kWinogradAutoMinChannels = 16;

/** Lower-case canonical name ("auto", "winograd2", ...). */
const char *convAlgoName(ConvAlgo algo);

/**
 * Strict parse of a ConvAlgo name, std::from_chars style: the whole
 * string must be exactly one canonical lower-case name — no case
 * folding, whitespace or prefix leniency. Returns false (leaving
 * @p out untouched) on anything else.
 */
bool parseConvAlgo(std::string_view text, ConvAlgo &out);

/**
 * The algorithm front-ends should adopt: SD_CONV_ALGO when set —
 * fatal with the valid set listed if it does not parse — else Auto.
 */
ConvAlgo defaultConvAlgo();

/** Set the process-global convolution algorithm. */
void setConvAlgo(ConvAlgo algo);

/**
 * Current process-global convolution algorithm. Initialized from
 * defaultConvAlgo() on first use, so SD_CONV_ALGO reaches every
 * convolution call site (tests included) without per-driver plumbing.
 */
ConvAlgo convAlgo();

/**
 * The concrete algorithm @p requested resolves to for the *forward* /
 * *backward-data* passes of layer @p l: Auto applies the heuristic
 * above, a forced Winograd falls back to Im2col when the transform
 * does not apply. Never returns Auto.
 */
ConvAlgo resolveConvAlgo(const Layer &l, ConvAlgo requested);

// --- standalone kernels (directly unit-tested) ---

/** Apply an activation in place. */
void applyActivation(Tensor &t, Activation act);

/**
 * Multiply @p grad in place by act'(z) evaluated from the *post*-
 * activation values @p y (ReLU/tanh/sigmoid derivatives are all cheap
 * functions of the output).
 */
void applyActivationGrad(Tensor &grad, const Tensor &y, Activation act);

/**
 * 2D convolution forward: out[n][oc][oh][ow] = sum w * in. No
 * activation. The batch is inferred from in.size() / inputElems; a CHW
 * tensor is batch 1.
 *
 * Dispatches on the selected ConvAlgo: im2col + blocked GEMM
 * (dnn/gemm.hh) by default, the Winograd F(2x2,3x3) / F(4x4,3x3)
 * kernels (dnn/winograd.hh) where selected and applicable, or the
 * Naive loop nests when forced. Every path parallelizes through the
 * core runtime over disjoint output blocks and is bit-identical for
 * every jobs value within a fixed algorithm. The direct loop-nest
 * implementations are retained with a Naive suffix (batched with a
 * serial outer image loop) as the tolerance oracle for tests and
 * benchmarks.
 */
void convForward(const Layer &l, const Tensor &in, const Tensor &weights,
                 Tensor &out);

/**
 * Convolution data-gradient: din = w^T (*) dout. GEMM + col2im, or the
 * Winograd forward transform over rotated filters when the selected
 * ConvAlgo routes this layer to Winograd.
 */
void convBackwardData(const Layer &l, const Tensor &dout,
                      const Tensor &weights, Tensor &din);

/**
 * Convolution weight-gradient: dw += dout * im2col(in)^T. Accumulates.
 * Always the im2col GEMM (or Naive when forced) — the Winograd tile
 * decomposition has no weight-gradient form here, so Winograd algos
 * fall back to the exact path.
 */
void convWeightGrad(const Layer &l, const Tensor &in, const Tensor &dout,
                    Tensor &dweights);

// Direct (naive) loop-nest kernels: the numerical oracle the GEMM
// lowering is checked against in test_gemm and bench/micro_parallel.
void convForwardNaive(const Layer &l, const Tensor &in,
                      const Tensor &weights, Tensor &out);
void convBackwardDataNaive(const Layer &l, const Tensor &dout,
                           const Tensor &weights, Tensor &din);
void convWeightGradNaive(const Layer &l, const Tensor &in,
                         const Tensor &dout, Tensor &dweights);
void fcForwardNaive(const Layer &l, const Tensor &in,
                    const Tensor &weights, Tensor &out);
void fcBackwardDataNaive(const Layer &l, const Tensor &dout,
                         const Tensor &weights, Tensor &din);
void fcWeightGradNaive(const Layer &l, const Tensor &in,
                       const Tensor &dout, Tensor &dweights);

/**
 * Pooling forward; for max-pooling @p argmax records winner indices
 * (global indices into the batched input tensor).
 */
void poolForward(const Layer &l, const Tensor &in, Tensor &out,
                 std::vector<std::uint32_t> *argmax);

/** Pooling backward (error up-sampling). */
void poolBackward(const Layer &l, const Tensor &dout,
                  const std::vector<std::uint32_t> &argmax, Tensor &din);

/**
 * Fully-connected forward: out[n] = W * flatten(in[n]) — one real GEMM
 * with the batch as the M dimension (batch 1 is M = 1, the same
 * orientation). Per-image results are bit-identical for every batch
 * size the image rides in: the serving determinism contract.
 */
void fcForward(const Layer &l, const Tensor &in, const Tensor &weights,
               Tensor &out);

/** Fully-connected data-gradient. */
void fcBackwardData(const Layer &l, const Tensor &dout,
                    const Tensor &weights, Tensor &din);

/**
 * Fully-connected weight-gradient (accumulates). Batched calls fold
 * the batch as the GEMM reduction dimension in ascending image order —
 * bit-identical to serial per-image rank-1 updates.
 */
void fcWeightGrad(const Layer &l, const Tensor &in, const Tensor &dout,
                  Tensor &dweights);

/**
 * Softmax + cross-entropy loss against an integer class label.
 *
 * @param logits output of the final layer (flat)
 * @param label golden class in [0, size)
 * @param dlogits gradient of the loss w.r.t. the logits (output)
 * @return scalar loss
 */
double softmaxCrossEntropy(const Tensor &logits, int label,
                           Tensor &dlogits);

/**
 * Batched softmax + cross-entropy: @p logits holds labels.size()
 * consecutive per-image logit vectors; @p dlogits (same volume)
 * receives every per-image gradient. @return the summed loss.
 */
double softmaxCrossEntropy(const Tensor &logits,
                           const std::vector<int> &labels,
                           Tensor &dlogits);

// --- the training/evaluation engine ---

/**
 * Holds the parameters and per-layer activations of one network and runs
 * FP / BP / WG / weight-update, mirroring the paper's Figure 3 data flow.
 *
 * Activation/error storage is governed by the memory planner
 * (dnn/memplan.hh). Under MemPlanMode::Off every layer owns dedicated
 * buffers — the historical layout. Under MemPlanMode::Share the engine
 * plans per-tensor lifetimes for the current pass shape and binds
 * non-pinned activations/errors as views into a grow-only arena, so
 * buffers whose lifetimes do not overlap share storage. Training is
 * bit-identical between the modes; what changes is the footprint and
 * the *pinning contract* on the getters:
 *
 *  - activation()/error() always return a tensor of the correct shape
 *    for the last pass's batch.
 *  - Values are guaranteed only for *pinned* layers (the input and
 *    output layers by default; pin() adds more) — a shared slot may
 *    have been overwritten by a later-living tensor. Under Off, every
 *    buffer behaves as pinned.
 */
class ReferenceEngine
{
  public:
    /**
     * @param net the topology (must outlive the engine)
     * @param seed deterministic weight-initialization seed
     * @param mem_mode activation-memory strategy; defaults to the
     *        process-global memPlanMode() (SD_MEMPLAN / --memplan)
     */
    explicit ReferenceEngine(const Network &net, std::uint64_t seed = 1,
                             MemPlanMode mem_mode = memPlanMode());

    /** Retracts this engine's contribution from the process-wide
     * refeng.bytes_* gauges (which aggregate across live engines —
     * their high-water marks survive destruction). */
    ~ReferenceEngine();

    ReferenceEngine(const ReferenceEngine &) = delete;
    ReferenceEngine &operator=(const ReferenceEngine &) = delete;

    const Network &network() const { return *net_; }

    /**
     * Forward propagation; returns the final layer's output.
     *
     * @p input is one CHW image (rank 3, batch 1) or an NCHW minibatch
     * (rank 4, batch N). The whole batch flows through every layer in
     * one pass; activation buffers are (re)shaped to the batch.
     */
    const Tensor &forward(const Tensor &input);

    /**
     * Full training iteration on one example: FP, loss, BP, WG.
     * Gradients accumulate into the gradient buffers (minibatching);
     * call applyUpdate() to consume them.
     *
     * @return the cross-entropy loss of this example
     */
    double forwardBackward(const Tensor &image, int label);

    /**
     * Batched training iteration: FP, loss, BP, WG for the whole
     * minibatch in one pass (labels.size() must match the batch of
     * @p input). Weight gradients accumulate in ascending image
     * order. @return the summed cross-entropy loss over the batch.
     */
    double forwardBackward(const Tensor &input,
                           const std::vector<int> &labels);

    /** SGD update: w -= lr/batch * dw, then zero the gradients. */
    void applyUpdate(float lr, int batch_size);

    /** Run one minibatch in a single batched pass, then update. */
    double trainMinibatch(const std::vector<Tensor> &images,
                          const std::vector<int> &labels, float lr);

    /** trainMinibatch on an already-stacked NCHW batch tensor. */
    double trainMinibatch(const Tensor &batch,
                          const std::vector<int> &labels, float lr);

    /** Predicted class of @p image (argmax over final outputs). */
    int predict(const Tensor &image);

    /** Batch size of the last forward / training pass. */
    std::size_t batchSize() const { return batch_; }

    /**
     * Wall-clock milliseconds layer @p id spent in the last forward().
     * Recorded only while metrics are enabled (core/metrics.hh);
     * 0 otherwise. Timing is at layer granularity — never inside the
     * kernels — so the overhead is one clock read per layer per pass.
     */
    double forwardMillis(LayerId id) const;

    /** Bytes currently held by this engine's tensors (weights, grads,
     * activations, errors, pooling argmax buffers, planner arena).
     * Counts heap *capacity*, not logical size — a buffer that shrank
     * without releasing its block still holds the bytes. */
    std::uint64_t liveBytes() const { return liveBytes_; }

    /** Largest liveBytes() this engine has reached (batch reshapes
     * grow and shrink the activation buffers). */
    std::uint64_t highWaterBytes() const { return highWaterBytes_; }

    /** The activation/error share of liveBytes(): pinned buffers plus
     * the planner arena (Share) or every per-layer buffer (Off). */
    std::uint64_t activationBytes() const { return actBytes_; }

    /** Largest activationBytes() this engine has reached. */
    std::uint64_t activationHighWaterBytes() const
    { return actHighWaterBytes_; }

    /** Bytes the current plan binds (arena + pinned buffers) at the
     * current batch; 0 under MemPlanMode::Off. */
    std::uint64_t plannedBytes() const { return plannedBytes_; }

    /** What the Off layout would hold in activation/error buffers at
     * the current batch — the analytic baseline the planner is
     * measured against (mode-independent). */
    std::uint64_t unplannedBytes() const;

    /** The memory strategy this engine was constructed with. */
    MemPlanMode memMode() const { return memMode_; }

    /** The pass shape the buffers are currently planned for. */
    PassShape passShape() const { return passShape_; }

    /**
     * Guarantee that layer @p id's activation()/error() values survive
     * every pass (excluded from slot sharing; dedicated buffers).
     * Call before running passes — pinning replans, so non-pinned
     * buffer contents are not preserved across it. No-op under Off,
     * where every buffer already behaves as pinned.
     */
    void pin(LayerId id);

    /**
     * Rebind this engine's weights as non-owning views into @p owner's
     * weight storage and release the local weight + gradient buffers,
     * so an inference pool of N engines holds one weight copy instead
     * of N (the per-engine saving shows up in liveBytes() and the
     * aggregated refeng.bytes_* gauges, since views report zero
     * capacity).
     *
     * Safe because every forward-path kernel takes `const Tensor &`
     * weights and forward()/predict() never touch grads_ — the only
     * weight writers are applyUpdate() and the weight-gradient
     * accumulation inside forwardBackward()/trainMinibatch(), and all
     * of those become fatal on a shared engine (it is forward-only).
     *
     * Requirements: both engines were built over the *same* Network
     * object, @p owner owns its weights (no chaining), and @p owner
     * outlives this engine — or at least every later forward() call.
     * Concurrent forward() on owner and sharers is safe as long as
     * nobody calls the owner's mutating entry points meanwhile.
     */
    void shareWeightsFrom(ReferenceEngine &owner);

    /** True after shareWeightsFrom(): this engine is forward-only. */
    bool weightsShared() const { return weightOwner_ != nullptr; }

    Tensor &weights(LayerId id);
    const Tensor &weights(LayerId id) const;
    Tensor &weightGrad(LayerId id);
    /**
     * Post-activation output of layer @p id from the last forward():
     * CHW for batch 1, NCHW covering *every* image of the batch
     * otherwise (use Tensor::imageAt to pull one image out).
     */
    const Tensor &activation(LayerId id) const;
    /** Error (loss gradient) at layer @p id from the last BP; batched
     * exactly like activation(). */
    const Tensor &error(LayerId id) const;

  private:
    std::vector<std::size_t> outputShape(const Layer &l) const;
    Tensor outputShapeTensor(const Layer &l) const;
    Tensor inputShapeTensor(const Layer &l) const;
    /** Reshape acts_/errors_ for a new batch size (Off mode). */
    void ensureBatch(std::size_t batch);
    /** Make the buffers valid for @p shape at @p batch: plan lookup
     * (Share), arena growth and view rebinding as needed. */
    void ensurePass(PassShape shape, std::size_t batch);
    /** The (cached) plan for the current pass shape. */
    const MemPlan &currentPlan();
    /** (Re)bind acts_/errors_ for the current mode/plan/batch. */
    void bindBuffers();
    /** Forward pass over already-bound buffers. */
    const Tensor &forwardImpl(const Tensor &input);
    /** Error buffer of @p id for BP, zero-initialized at the first
     * touch of the pass (shared slots hold stale data at birth). */
    Tensor &bpError(LayerId id);
    /** Recompute liveBytes_/highWaterBytes_ and publish the gauges. */
    void accountMemory();
    /** Publish this engine's delta into the process-wide (multi-
     * engine aggregate) refeng.bytes_* gauges. */
    void publishMemoryGauges();

    const Network *net_;
    const ReferenceEngine *weightOwner_ = nullptr; ///< set by shareWeightsFrom
    MemPlanMode memMode_;
    std::size_t batch_ = 1;             ///< current minibatch size
    PassShape passShape_ = PassShape::Forward;
    MemPlan plans_[2];                  ///< per PassShape, lazily built
    bool planReady_[2] = {false, false};
    bool boundValid_ = false;           ///< views match plan/batch
    std::vector<char> pinned_;          ///< per layer; excluded from plan
    std::vector<char> errorReady_;      ///< per layer; zeroed this pass
    std::vector<float> arena_;          ///< grow-only shared-slot pool
    std::vector<Tensor> weights_;
    std::vector<Tensor> grads_;
    std::vector<Tensor> acts_;          ///< post-activation outputs
    std::vector<Tensor> errors_;        ///< d(loss)/d(output)
    std::vector<std::vector<std::uint32_t>> argmax_;
    std::vector<double> fwdMillis_;     ///< last forward(), per layer
    std::uint64_t liveBytes_ = 0;
    std::uint64_t highWaterBytes_ = 0;
    std::uint64_t actBytes_ = 0;
    std::uint64_t actHighWaterBytes_ = 0;
    std::uint64_t plannedBytes_ = 0;
    std::int64_t publishedLiveBytes_ = 0;    ///< gauge contribution
    std::int64_t publishedPlannedBytes_ = 0; ///< gauge contribution
};

/**
 * A deterministic synthetic classification dataset: class-conditional
 * Gaussian blobs rendered into CHW images, separable enough that a small
 * CNN visibly learns it within a few hundred SGD steps. Stands in for
 * ImageNet (which we do not have) in the training examples and tests.
 */
class SyntheticDataset
{
  public:
    SyntheticDataset(int classes, int channels, int height, int width,
                     std::uint64_t seed = 7);

    /** Generate one (image, label) sample. */
    std::pair<Tensor, int> sample();

    int classes() const { return classes_; }

  private:
    int classes_, channels_, height_, width_;
    Rng rng_;
};

} // namespace sd::dnn

#endif // SCALEDEEP_DNN_REFERENCE_HH
