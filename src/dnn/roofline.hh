/**
 * @file
 * Per-layer roofline accounting for the reference engine: analytic
 * FLOP and byte counts per forward pass, the engine's measured wall
 * time, and the resulting achieved GFLOP/s with ConvAlgo attribution.
 *
 * Conventions (asserted exactly by tests/test_metrics.cc, so change
 * them there too):
 *   flops     = 2 * macCount() * batch for Conv/Fc, 0 otherwise
 *               (one multiply + one add per MAC)
 *   bytes     = 4 * (batch * (inputElems + outputElems) + weightCount)
 *               — the layer's forward working set, fp32
 *   liveBytes = 4 * (2 * batch * outputElems + 2 * weightCount)
 *               — what the engine holds for the layer (acts + errors
 *               buffers, weights + gradients)
 */

#ifndef SCALEDEEP_DNN_ROOFLINE_HH
#define SCALEDEEP_DNN_ROOFLINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/table.hh"
#include "dnn/layer.hh"

namespace sd {
class JsonWriter;
}

namespace sd::dnn {

class ReferenceEngine;

/** Schema tag of writeRooflineJson()'s output. -3 added the memory-
 * planner fields (memPlan, plannedBytes, unplannedBytes,
 * activationHighWaterBytes). */
inline constexpr const char *kRooflineSchema = "scaledeep-roofline-3";

/** One layer's roofline line. */
struct LayerRoofline
{
    LayerId id = -1;
    std::string name;
    std::string kind;       ///< layerKindName()
    std::string algo;       ///< resolved ConvAlgo / "gemm" / "-"
    std::uint64_t flops = 0;
    std::uint64_t bytes = 0;
    std::uint64_t liveBytes = 0;
    double ms = 0.0;        ///< measured forward wall time (0 when
                            ///< metrics were disabled during forward)

    /** FLOPs per byte of forward working set. */
    double intensity() const
    {
        return bytes == 0 ? 0.0
                          : static_cast<double>(flops) /
                                static_cast<double>(bytes);
    }

    /** Achieved GFLOP/s; 0 when no time was measured. */
    double gflops() const
    {
        return ms <= 0.0 ? 0.0
                         : static_cast<double>(flops) / (ms * 1e6);
    }

    /** Percent of @p peak_gflops achieved; 0 when unmeasured. */
    double pctPeak(double peak_gflops) const
    {
        return peak_gflops <= 0.0 ? 0.0
                                  : 100.0 * gflops() / peak_gflops;
    }
};

/** The whole network's roofline for one measured forward pass. */
struct RooflineReport
{
    std::string network;
    std::size_t batch = 1;
    std::vector<LayerRoofline> layers;

    std::uint64_t totalFlops = 0;
    std::uint64_t totalBytes = 0;
    std::uint64_t engineLiveBytes = 0;      ///< ReferenceEngine account
    std::uint64_t engineHighWaterBytes = 0;
    double totalMs = 0.0;

    // Memory-planner accounting (dnn/memplan.hh): what the plan binds
    // for activations/errors vs. what the unplanned per-layer layout
    // would hold at this batch, plus the measured activation
    // high-water. plannedBytes is 0 under SD_MEMPLAN=off.
    std::string memPlan;                    ///< memPlanModeName()
    std::uint64_t plannedBytes = 0;
    std::uint64_t unplannedBytes = 0;
    std::uint64_t activationHighWaterBytes = 0;

    // Peak-FLOPs model of the resolved GEMM dispatch level (see
    // GemmKernelModel in dnn/gemm.hh): peakGflops = flops/cycle/core
    // under the level's lanes-x-FMA-issue model, times the estimated
    // sustained clock, times the worker count the run could actually
    // use. %-of-peak columns divide by this.
    std::string gemmKernel;     ///< resolved dispatch-level name
    double clockGhz = 0.0;      ///< estimateClockGhz() at report time
    int peakCores = 0;          ///< min(jobs, hardware concurrency)
    double peakGflops = 0.0;
};

/**
 * Estimated sustained core clock in GHz, measured once per process by
 * timing a register-dependent integer chain (xorshift64, a known
 * cycles-per-iteration recurrence) — no OS frequency interface needed.
 * An estimate for the %-of-peak display, not a calibrated number.
 */
double estimateClockGhz();

/**
 * Build the report from @p engine's last forward pass: analytic
 * FLOP/byte counts at the engine's current batch size, measured times
 * from ReferenceEngine::forwardMillis(). ConvAlgo attribution uses the
 * *current* process-global convAlgo() resolution per layer.
 */
RooflineReport rooflineReport(const ReferenceEngine &engine,
                              const std::string &network_name);

/** Human-readable per-layer table. */
Table rooflineTable(const RooflineReport &report);

/** Write the report as one JSON object under kRooflineSchema. */
void writeRooflineJson(JsonWriter &w, const RooflineReport &report);

} // namespace sd::dnn

#endif // SCALEDEEP_DNN_ROOFLINE_HH
