/**
 * @file
 * Asynchronous serving front-end with continuous batching over a pool
 * of reference engines — the traffic-facing path that turns the
 * batched kernels (PR 3), the memory planner (PR 8) and the telemetry
 * layer (PR 6) into requests-per-second and latency percentiles.
 *
 * Architecture (DESIGN.md §10 "Serving layer"):
 *
 *  - submit() validates the image, stamps arrival/deadline, and either
 *    enqueues it (returning a std::future<ServeResult>) or fails it
 *    fast: Rejected when the bounded queue is full, ShutDown after
 *    shutdown(). Submitters never block.
 *  - A pool of `engines` workers (one memory-planned ReferenceEngine
 *    each, weights shared with engine 0 by default) runs on a
 *    dedicated TaskCrew. Each idle worker *is* the batch former: it
 *    camps on the queue, closes a batch when `maxBatch` requests are
 *    waiting or the close deadline passes, and leaves the queue — and
 *    the lock — to the next idle worker before computing. Batch
 *    formation therefore overlaps compute whenever more than one
 *    engine exists, and with one engine the queue itself accumulates
 *    the next batch during compute: there is no stop-the-world
 *    barrier between batches either way.
 *  - Close rule: with `oldest` the front (longest-waiting) request,
 *        closeAt = min(oldest.arrival + maxQueueDelay,
 *                      oldest.deadline - computeEstimate)
 *    where computeEstimate is an EWMA of recent batch compute times
 *    (0 until the first batch completes). A request whose budget is
 *    already exhausted dispatches immediately with whatever has
 *    accumulated. Requests that miss their deadline still complete
 *    and return a result — `deadlineMissed` is reporting, not
 *    cancellation.
 *
 * Determinism contract: batching never changes results. For a fixed
 * arrival trace and fixed engines/SD_JOBS, every request's output is
 * bit-identical to running that request alone through
 * ReferenceEngine::forward — the batched kernels compute each image's
 * outputs with the same per-image arithmetic in the same order
 * (dnn/reference.hh), and scatter via Tensor::imageAt is a plain copy.
 * test_serve pins this; micro_serve makes it fatal.
 */

#ifndef SCALEDEEP_SERVE_SERVER_HH
#define SCALEDEEP_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/parallel.hh"
#include "dnn/memplan.hh"
#include "dnn/reference.hh"
#include "dnn/tensor.hh"

namespace sd::serve {

/**
 * The engine-pool size front-ends should adopt: the SD_SERVE_ENGINES
 * environment variable when set to a positive integer (fatal
 * otherwise), else 1.
 */
int defaultServeEngines();

/** Set the process-global engine-pool size (fatal unless >= 1). */
void setServeEngines(int engines);

/**
 * Current process-global engine-pool size. Initialized from
 * defaultServeEngines() on first use, so SD_SERVE_ENGINES reaches
 * every server without per-driver plumbing; front-ends expose it as
 * --engines.
 */
int serveEngines();

/** Terminal state of one submitted request. */
enum class RequestStatus {
    Ok,        ///< computed; `output` holds the final-layer values
    Rejected,  ///< bounded queue was full at submit; never ran
    ShutDown,  ///< submitted after shutdown(); never ran
};

/** What a request's future resolves to. */
struct ServeResult
{
    dnn::Tensor output;      ///< final-layer output (CHW); empty unless Ok
    RequestStatus status = RequestStatus::Ok;
    bool deadlineMissed = false; ///< had a deadline and completed past it
    double queueMs = 0.0;    ///< submit -> batch close
    double computeMs = 0.0;  ///< batch forward wall time (whole batch)
    double totalMs = 0.0;    ///< submit -> completion
    int batchSize = 0;       ///< size of the batch this request rode in
};

/** Server construction knobs. Defaults resolve the process globals. */
struct ServeConfig
{
    /** Engine-pool size (= worker count). Workers > 1 serialize their
     * nested kernel regions (TaskCrew contract), trading per-request
     * kernel parallelism for request parallelism; engines = 1 keeps
     * full kernel parallelism inside each batch. */
    int engines = serveEngines();

    /** Batch-size bound: a batch closes as soon as this many requests
     * are waiting. 1 disables coalescing (the baseline micro_serve
     * measures against). */
    int maxBatch = 8;

    /** Batch-delay bound: a batch closes no later than this many ms
     * after its oldest request arrived, deadline pressure permitting. */
    double maxQueueDelayMs = 2.0;

    /** Bounded-queue capacity; submit() rejects above it. */
    int queueCapacity = 1024;

    /** Activation-memory strategy for every pool engine. */
    dnn::MemPlanMode memMode = dnn::memPlanMode();

    /** Bind engines 1..N-1 as views of engine 0's weights (one weight
     * copy for the whole pool) instead of N identical copies. Results
     * are identical either way — the copies come from the same seed. */
    bool shareWeights = true;

    /** Weight-initialization seed for the pool engines. */
    std::uint64_t seed = 1;
};

/** Monotonic request/batch counters (always on, unlike serve.*
 * metrics, so tests and the stats export can rely on them). */
struct ServeCounters
{
    std::uint64_t admitted = 0;
    std::uint64_t rejectedFull = 0;
    std::uint64_t rejectedShutdown = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadlineMissed = 0;
    std::uint64_t batches = 0;
    std::uint64_t batchedImages = 0; ///< sum of dispatched batch sizes
    std::uint64_t maxBatchObserved = 0;
};

/**
 * The serving front-end. Construction spins up the engine pool and
 * its crew; shutdown() (or destruction) stops intake, drains every
 * admitted request, and joins the workers.
 *
 * Thread safety: submit() and the counter accessors are safe from any
 * thread, concurrently with the workers. engine() is for setup
 * (weight loading) and verification — do not mutate engines while
 * requests are in flight.
 */
class InferenceServer
{
  public:
    explicit InferenceServer(const dnn::Network &net, ServeConfig cfg = {});
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Submit one CHW image. @p deadlineMs is the end-to-end SLO budget
     * in milliseconds from now; negative means no deadline. A zero
     * deadline degenerates to "dispatch immediately" and is always
     * reported deadlineMissed (any completion takes > 0 ms).
     *
     * The returned future always resolves — with status Rejected /
     * ShutDown immediately when the request was not admitted, else
     * with the computed result once its batch completes. Fatal on an
     * input whose volume does not match the network's input layer.
     */
    std::future<ServeResult> submit(dnn::Tensor input,
                                    double deadlineMs = -1.0);

    /**
     * Stop intake, drain every admitted request, join the workers.
     * Idempotent; the destructor calls it.
     */
    void shutdown();

    const ServeConfig &config() const { return cfg_; }

    /** Pool engine @p i (0 owns the weights under shareWeights). */
    dnn::ReferenceEngine &engine(int i);

    /** Snapshot of the request/batch counters. */
    ServeCounters counters() const;

    /** Requests currently waiting in the queue (racy snapshot). */
    std::size_t queueDepth() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Request
    {
        dnn::Tensor input;
        std::promise<ServeResult> promise;
        Clock::time_point arrival;
        Clock::time_point deadline; ///< Clock::time_point::max() if none
        bool hasDeadline = false;
    };

    void workerLoop(int worker);
    /** Pop up to maxBatch requests; called with mu_ held, queue
     * non-empty. Returns the batch-close time point. The batch comes
     * back empty if a sibling worker drained the queue while this one
     * slept waiting for the close deadline — the caller re-waits. */
    Clock::time_point formBatch(std::unique_lock<std::mutex> &lock,
                                std::vector<Request> &batch);
    void runBatch(std::vector<Request> &batch, int worker,
                  Clock::time_point closedAt);

    const dnn::Network *net_;
    ServeConfig cfg_;
    std::uint64_t inputElems_;
    std::vector<std::unique_ptr<dnn::ReferenceEngine>> engines_;
    std::unique_ptr<TaskCrew> crew_;
    std::thread dispatcher_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool stop_ = false;
    std::once_flag joinOnce_;
    double computeEstimateMs_ = 0.0; ///< EWMA of batch compute (mu_)

    std::atomic<std::uint64_t> admitted_{0};
    std::atomic<std::uint64_t> rejectedFull_{0};
    std::atomic<std::uint64_t> rejectedShutdown_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> deadlineMissed_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> batchedImages_{0};
    std::atomic<std::uint64_t> maxBatchObserved_{0};
};

} // namespace sd::serve

#endif // SCALEDEEP_SERVE_SERVER_HH
