#include "serve/server.hh"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

#include "core/logging.hh"
#include "core/metrics.hh"

namespace sd::serve {

namespace {

/** Process-global engine-pool size; 0 = not yet resolved. */
std::atomic<int> g_serve_engines{0};

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

std::uint64_t
micros(double ms)
{
    return ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1000.0);
}

void
recordBatchMetrics(std::size_t batch, double formMs)
{
#if SD_METRICS
    if (!SD_METRICS_ACTIVE())
        return;
    static MetricCounter &batches = MetricsRegistry::global().counter(
        "serve.batches", "batches dispatched to the engine pool");
    static MetricHistogram &size = MetricsRegistry::global().histogram(
        "serve.batch_size", "requests per dispatched batch");
    static MetricHistogram &form = MetricsRegistry::global().histogram(
        "serve.batch_form_us", "oldest-request arrival -> batch close "
        "wall time (us)");
    batches.add(1);
    size.sample(batch);
    form.sample(micros(formMs));
#else
    (void)batch;
    (void)formMs;
#endif
}

void
recordRequestMetrics(double queueMs, double totalMs, bool missed)
{
#if SD_METRICS
    if (!SD_METRICS_ACTIVE())
        return;
    static MetricCounter &completed = MetricsRegistry::global().counter(
        "serve.completed", "requests completed (futures resolved Ok)");
    static MetricCounter &misses = MetricsRegistry::global().counter(
        "serve.deadline_missed", "requests completed past their "
        "deadline");
    static MetricHistogram &wait = MetricsRegistry::global().histogram(
        "serve.queue_wait_us", "submit -> batch close wall time per "
        "request (us)");
    static MetricHistogram &e2e = MetricsRegistry::global().histogram(
        "serve.e2e_us", "submit -> completion wall time per request "
        "(us)");
    completed.add(1);
    if (missed)
        misses.add(1);
    wait.sample(micros(queueMs));
    e2e.sample(micros(totalMs));
#else
    (void)queueMs;
    (void)totalMs;
    (void)missed;
#endif
}

void
countAdmission(const char *which)
{
#if SD_METRICS
    if (!SD_METRICS_ACTIVE())
        return;
    // Three disjoint outcomes, one counter each; cached per-site.
    if (which[0] == 'a') {
        static MetricCounter &c = MetricsRegistry::global().counter(
            "serve.admitted", "requests accepted into the queue");
        c.add(1);
    } else if (which[0] == 'f') {
        static MetricCounter &c = MetricsRegistry::global().counter(
            "serve.rejected_full", "requests rejected: queue full");
        c.add(1);
    } else {
        static MetricCounter &c = MetricsRegistry::global().counter(
            "serve.rejected_shutdown",
            "requests rejected: submitted after shutdown");
        c.add(1);
    }
#else
    (void)which;
#endif
}

} // namespace

int
defaultServeEngines()
{
    if (const char *env = std::getenv("SD_SERVE_ENGINES")) {
        const std::string text(env);
        int value = 0;
        const auto [ptr, ec] = std::from_chars(
            text.data(), text.data() + text.size(), value);
        if (ec != std::errc{} || ptr != text.data() + text.size() ||
            value < 1)
            fatal("SD_SERVE_ENGINES=", env,
                  " is not a positive engine count");
        return value;
    }
    return 1;
}

void
setServeEngines(int engines)
{
    if (engines < 1)
        fatal("setServeEngines: engine count must be positive, got ",
              engines);
    g_serve_engines.store(engines, std::memory_order_relaxed);
}

int
serveEngines()
{
    const int v = g_serve_engines.load(std::memory_order_relaxed);
    if (v > 0)
        return v;
    // First use: resolve from the environment. A concurrent first use
    // races benignly — defaultServeEngines() is deterministic.
    const int d = defaultServeEngines();
    g_serve_engines.store(d, std::memory_order_relaxed);
    return d;
}

InferenceServer::InferenceServer(const dnn::Network &net, ServeConfig cfg)
    : net_(&net), cfg_(cfg)
{
    if (cfg_.engines < 1)
        fatal("InferenceServer: engines must be positive, got ",
              cfg_.engines);
    if (cfg_.maxBatch < 1)
        fatal("InferenceServer: maxBatch must be positive, got ",
              cfg_.maxBatch);
    if (cfg_.maxQueueDelayMs < 0.0)
        fatal("InferenceServer: maxQueueDelayMs must be >= 0, got ",
              cfg_.maxQueueDelayMs);
    if (cfg_.queueCapacity < 1)
        fatal("InferenceServer: queueCapacity must be positive, got ",
              cfg_.queueCapacity);
    inputElems_ = net.layers().front().outputElems();

    engines_.reserve(static_cast<std::size_t>(cfg_.engines));
    for (int i = 0; i < cfg_.engines; ++i) {
        engines_.push_back(std::make_unique<dnn::ReferenceEngine>(
            net, cfg_.seed, cfg_.memMode));
        if (cfg_.shareWeights && i > 0)
            engines_.back()->shareWeightsFrom(*engines_[0]);
    }

    // One crew thread per engine — serving concurrency is request
    // fan-out, not compute fan-out, so it is deliberately NOT bounded
    // by jobs(). With engines == 1 crew.run degrades to inline
    // (un-marked) execution on the dispatcher, so the single worker
    // keeps full kernel parallelism; with engines > 1 each worker is
    // a crew task whose nested kernel regions serialize, trading
    // per-batch kernel parallelism for cross-batch engine parallelism
    // (the same trade DataParallelTrainer makes).
    crew_ = std::make_unique<TaskCrew>(cfg_.engines);
    dispatcher_ = std::thread([this] {
        crew_->run(static_cast<std::size_t>(cfg_.engines),
                   [this](std::size_t i) {
                       workerLoop(static_cast<int>(i));
                   });
    });
}

InferenceServer::~InferenceServer()
{
    shutdown();
}

std::future<ServeResult>
InferenceServer::submit(dnn::Tensor input, double deadlineMs)
{
    if (input.size() != inputElems_)
        fatal("InferenceServer::submit: input holds ", input.size(),
              " elements but the network input layer expects ",
              inputElems_);
    Request req;
    req.input = std::move(input);
    req.arrival = Clock::now();
    req.hasDeadline = deadlineMs >= 0.0;
    req.deadline = req.hasDeadline
        ? req.arrival + std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(deadlineMs))
        : Clock::time_point::max();
    std::future<ServeResult> fut = req.promise.get_future();

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) {
            rejectedShutdown_.fetch_add(1, std::memory_order_relaxed);
            countAdmission("shutdown");
            ServeResult r;
            r.status = RequestStatus::ShutDown;
            req.promise.set_value(std::move(r));
            return fut;
        }
        if (queue_.size() >=
            static_cast<std::size_t>(cfg_.queueCapacity)) {
            rejectedFull_.fetch_add(1, std::memory_order_relaxed);
            countAdmission("full");
            ServeResult r;
            r.status = RequestStatus::Rejected;
            req.promise.set_value(std::move(r));
            return fut;
        }
        queue_.push_back(std::move(req));
        admitted_.fetch_add(1, std::memory_order_relaxed);
        countAdmission("admitted");
    }
    cv_.notify_one();
    return fut;
}

void
InferenceServer::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    // Exactly one caller joins; late callers block until the drain is
    // complete, so shutdown() is safe to race with itself and with
    // the destructor.
    std::call_once(joinOnce_, [this] { dispatcher_.join(); });
}

dnn::ReferenceEngine &
InferenceServer::engine(int i)
{
    if (i < 0 || i >= cfg_.engines)
        panic("InferenceServer::engine: index ", i, " out of range [0, ",
              cfg_.engines, ")");
    return *engines_[static_cast<std::size_t>(i)];
}

ServeCounters
InferenceServer::counters() const
{
    ServeCounters c;
    c.admitted = admitted_.load(std::memory_order_relaxed);
    c.rejectedFull = rejectedFull_.load(std::memory_order_relaxed);
    c.rejectedShutdown =
        rejectedShutdown_.load(std::memory_order_relaxed);
    c.completed = completed_.load(std::memory_order_relaxed);
    c.deadlineMissed = deadlineMissed_.load(std::memory_order_relaxed);
    c.batches = batches_.load(std::memory_order_relaxed);
    c.batchedImages = batchedImages_.load(std::memory_order_relaxed);
    c.maxBatchObserved =
        maxBatchObserved_.load(std::memory_order_relaxed);
    return c;
}

std::size_t
InferenceServer::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

void
InferenceServer::workerLoop(int worker)
{
    std::vector<Request> batch;
    for (;;) {
        batch.clear();
        Clock::time_point closedAt;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ && drained
            closedAt = formBatch(lock, batch);
            // Another worker may have drained the queue while this one
            // slept inside formBatch — nothing to run, wait again.
            if (batch.empty())
                continue;
            // Leftover requests re-notify the next idle worker — their
            // original submit notifications may already have been
            // consumed by this one.
            if (!queue_.empty())
                cv_.notify_one();
        }
        runBatch(batch, worker, closedAt);
    }
}

InferenceServer::Clock::time_point
InferenceServer::formBatch(std::unique_lock<std::mutex> &lock,
                           std::vector<Request> &batch)
{
    // The close deadline is recomputed from the *current* front on
    // every wakeup: while this worker sleeps the lock is released, so
    // a sibling worker can pop the front (or the whole queue) out from
    // under it. The delay bound always applies; a request deadline
    // tightens it by the EWMA compute estimate, so the batch is
    // dispatched while the SLO still has room for the forward pass.
    for (;;) {
        if (stop_ || queue_.empty() ||
            queue_.size() >= static_cast<std::size_t>(cfg_.maxBatch))
            break;
        const Request &oldest = queue_.front();
        Clock::time_point close_at =
            oldest.arrival +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    cfg_.maxQueueDelayMs));
        if (oldest.hasDeadline) {
            const Clock::time_point latest =
                oldest.deadline -
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        computeEstimateMs_));
            close_at = std::min(close_at, latest);
        }
        if (Clock::now() >= close_at)
            break;
        cv_.wait_until(lock, close_at);
    }
    // Empty here means a sibling drained the queue while we slept; the
    // caller sees an empty batch and goes back to waiting.
    const std::size_t take = std::min(
        queue_.size(), static_cast<std::size_t>(cfg_.maxBatch));
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }
    return Clock::now();
}

void
InferenceServer::runBatch(std::vector<Request> &batch, int worker,
                          Clock::time_point closedAt)
{
    dnn::ReferenceEngine &eng = *engines_[static_cast<std::size_t>(worker)];
    const std::size_t n = batch.size();

    const dnn::Tensor *out = nullptr;
    const Clock::time_point computeStart = Clock::now();
    {
        // The serve.compute_us span is RAII: the timer samples the
        // elapsed microseconds into the histogram when the block ends.
        std::optional<MetricHistogram::ScopedTimer> span;
#if SD_METRICS
        if (SD_METRICS_ACTIVE()) {
            static MetricHistogram &h =
                MetricsRegistry::global().histogram(
                    "serve.compute_us",
                    "batched forward wall time per batch (us)");
            span.emplace(h.observeScopedTimer());
        }
#endif
        if (n == 1) {
            out = &eng.forward(batch[0].input);
        } else {
            std::vector<dnn::Tensor> inputs;
            inputs.reserve(n);
            for (Request &r : batch)
                inputs.push_back(std::move(r.input));
            out = &eng.forward(dnn::Tensor::stack(inputs));
        }
    }
    const Clock::time_point done = Clock::now();
    const double computeMs = msBetween(computeStart, done);

    batches_.fetch_add(1, std::memory_order_relaxed);
    batchedImages_.fetch_add(n, std::memory_order_relaxed);
    std::uint64_t prevMax =
        maxBatchObserved_.load(std::memory_order_relaxed);
    while (n > prevMax &&
           !maxBatchObserved_.compare_exchange_weak(
               prevMax, n, std::memory_order_relaxed))
        ;
    recordBatchMetrics(n, msBetween(batch[0].arrival, closedAt));

    for (std::size_t i = 0; i < n; ++i) {
        Request &r = batch[i];
        ServeResult res;
        res.status = RequestStatus::Ok;
        res.output = out->imageAt(i);
        res.batchSize = static_cast<int>(n);
        res.queueMs = msBetween(r.arrival, closedAt);
        res.computeMs = computeMs;
        res.totalMs = msBetween(r.arrival, done);
        res.deadlineMissed = r.hasDeadline && done > r.deadline;
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (res.deadlineMissed)
            deadlineMissed_.fetch_add(1, std::memory_order_relaxed);
        recordRequestMetrics(res.queueMs, res.totalMs,
                             res.deadlineMissed);
        r.promise.set_value(std::move(res));
    }

    {
        // EWMA of batch compute time feeds the deadline budget in
        // formBatch (0 until the first batch lands, so the very first
        // deadline-bound batch may overshoot once while it learns).
        std::lock_guard<std::mutex> lock(mu_);
        computeEstimateMs_ = computeEstimateMs_ == 0.0
            ? computeMs
            : 0.75 * computeEstimateMs_ + 0.25 * computeMs;
    }
}

} // namespace sd::serve
