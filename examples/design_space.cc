/**
 * @file
 * Design-space exploration: sweep CompHeavy array geometry, MemHeavy
 * capacity and chip column count around the paper's design point and
 * report training throughput and efficiency on a mixed workload —
 * the kind of study the ScaleDeep authors ran to pick Figure 14's
 * parameters.
 *
 * Run:  ./design_space
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "arch/presets.hh"
#include "core/logging.hh"
#include "core/table.hh"
#include "dnn/zoo.hh"
#include "sim/perf/perfsim.hh"

namespace {

using namespace sd;

/** Geometric-mean training throughput over a 3-network workload. */
double
workloadScore(const arch::NodeConfig &node)
{
    const char *names[] = {"AlexNet", "GoogLenet", "VGG-A"};
    double log_sum = 0.0;
    for (const char *name : names) {
        dnn::Network net = dnn::makeByName(name);
        sim::perf::PerfSim sim(net, node);
        log_sum += std::log(sim.run().trainImagesPerSec);
    }
    return std::exp(log_sum / 3.0);
}

} // namespace

int
main()
{
    using namespace sd;
    setVerbose(false);

    std::printf("design-space sweep around the Figure 14 point "
                "(geo-mean train img/s over AlexNet/GoogLeNet/"
                "VGG-A)\n\n");

    // Sweep 1: 2D-PE array geometry at constant lane count.
    {
        Table t({"array (RxCxL)", "lanes", "peak/tile", "score img/s"});
        const int shapes[][3] = {{8, 3, 4}, {4, 6, 4}, {16, 3, 2},
                                 {8, 6, 2}, {8, 12, 1}, {12, 2, 4}};
        for (const auto &sh : shapes) {
            arch::NodeConfig node = arch::singlePrecisionNode();
            node.cluster.convChip.comp.arrayRows = sh[0];
            node.cluster.convChip.comp.arrayCols = sh[1];
            node.cluster.convChip.comp.lanes = sh[2];
            t.addRow({std::to_string(sh[0]) + "x" +
                          std::to_string(sh[1]) + "x" +
                          std::to_string(sh[2]),
                      std::to_string(sh[0] * sh[1] * sh[2]),
                      fmtEng(node.cluster.convChip.comp.peakFlops(
                                 node.freq), 1),
                      fmtDouble(workloadScore(node), 0)});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    // Sweep 2: MemHeavy capacity (mapping pressure vs area).
    {
        Table t({"MemHeavy capacity", "score img/s"});
        for (int kib : {128, 256, 512, 1024}) {
            arch::NodeConfig node = arch::singlePrecisionNode();
            node.cluster.convChip.mem.capacity =
                static_cast<Bytes>(kib) * 1024;
            t.addRow({std::to_string(kib) + " KiB",
                      fmtDouble(workloadScore(node), 0)});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    // Sweep 3: chip columns (more, smaller columns vs fewer).
    {
        Table t({"chip columns", "score img/s"});
        for (int cols : {8, 12, 16, 24}) {
            arch::NodeConfig node = arch::singlePrecisionNode();
            node.cluster.convChip.cols = cols;
            t.addRow({std::to_string(cols),
                      fmtDouble(workloadScore(node), 0)});
        }
        t.print(std::cout);
    }
    std::printf("\nthe paper's 8x3x4 array / 512 KiB / 16-column "
                "design point should score at or near the top of each "
                "sweep.\n");
    return 0;
}
