/**
 * @file
 * Quickstart: the 60-second tour of the library.
 *
 *  1. Build a DNN topology with the builder API.
 *  2. Analyze its workload (FLOPs, Bytes/FLOP).
 *  3. Map it onto the ScaleDeep node with the compiler.
 *  4. Estimate training/evaluation performance with the simulator.
 *
 * Run:  ./quickstart
 */

#include <cstdio>

#include "arch/presets.hh"
#include "core/logging.hh"
#include "core/table.hh"
#include "dnn/network.hh"
#include "dnn/workload.hh"
#include "dnn/zoo.hh"
#include "sim/perf/perfsim.hh"

int
main()
{
    using namespace sd;
    setVerbose(false);

    // 1. A small VGG-flavoured CNN, built layer by layer.
    dnn::NetworkBuilder b("demo-cnn", 3, 64, 64);
    auto c1 = b.conv("conv1", b.input(), 32, 3, 1, 1);
    auto p1 = b.maxPool("pool1", c1, 2, 2);
    auto c2 = b.conv("conv2", p1, 64, 3, 1, 1);
    auto p2 = b.maxPool("pool2", c2, 2, 2);
    auto c3 = b.conv("conv3", p2, 128, 3, 1, 1);
    auto p3 = b.maxPool("pool3", c3, 2, 2);
    auto f1 = b.fc("fc1", p3, 256);
    b.fc("fc2", f1, 10, dnn::Activation::None);
    dnn::Network net = b.build();

    dnn::NetworkSummary s = net.summary();
    std::printf("network %s: %d conv + %d fc + %d samp layers, %.2fM "
                "neurons, %.2fM weights\n",
                net.name().c_str(), s.convLayers, s.fcLayers,
                s.sampLayers, s.neurons / 1e6, s.weights / 1e6);

    // 2. Workload analysis.
    dnn::Workload w(net);
    std::printf("evaluation: %.2f GFLOPs/image; training: %.2f "
                "GFLOPs/image\n",
                w.evaluationFlops() / 1e9, w.trainingFlops() / 1e9);

    // 3 + 4. Map and simulate on the paper's single-precision node.
    arch::NodeConfig node = arch::singlePrecisionNode();
    sim::perf::PerfSim sim(net, node);
    sim::perf::PerfResult r = sim.run();
    std::printf("mapping: %d ConvLayer columns on %d chip(s), %d "
                "copies across the node\n",
                r.mapping.convColumns, r.mapping.convChips,
                r.mapping.copies);
    std::printf("training %.0f img/s, evaluation %.0f img/s, 2D-PE "
                "utilization %.1f%%, %.0f GFLOPs/W\n",
                r.trainImagesPerSec, r.evalImagesPerSec,
                100.0 * r.peUtil, r.gflopsPerWatt);

    // Compare with a stock network from the zoo.
    sim::perf::PerfSim alex_sim(dnn::makeAlexNet(), node);
    std::printf("for reference, AlexNet trains at %.0f img/s on the "
                "same node.\n",
                alex_sim.run().trainImagesPerSec);
    return 0;
}
