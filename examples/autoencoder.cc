/**
 * @file
 * Unsupervised learning on the simulated hardware: a small
 * fully-connected autoencoder trained with MSE reconstruction loss
 * through the functional ScaleDeep simulator. Exercises the paper's
 * claim that ScaleDeep "can be programmed to execute other DNN
 * topologies for supervised and unsupervised learning, such as ...
 * autoencoders".
 *
 * Run:  ./autoencoder
 */

#include <cstdio>

#include "compiler/trainer.hh"
#include "core/logging.hh"
#include "dnn/reference.hh"
#include "dnn/zoo.hh"

int
main()
{
    using namespace sd;
    using namespace sd::dnn;
    setVerbose(false);

    // 36-16-8-16-36 autoencoder over 6x6 synthetic blobs.
    const int side = 6, dim = side * side;
    NetworkBuilder b("autoencoder", 1, side, side);
    LayerId e1 = b.fc("enc1", b.input(), 16, Activation::Tanh);
    LayerId z = b.fc("code", e1, 8, Activation::Tanh);
    LayerId d1 = b.fc("dec1", z, 16, Activation::Tanh);
    b.fc("dec2", d1, dim, Activation::None);
    Network net = b.build();

    sim::MachineConfig mc;
    mc.rows = 2;
    mc.cols = static_cast<int>(net.numLayers());
    compiler::TrainRunner runner(net, mc, /*seed=*/5);

    SyntheticDataset data(4, 1, side, side, 9);
    std::printf("training a %d-16-8-16-%d autoencoder on the "
                "simulated hardware...\n", dim, dim);
    double first = 0.0, last = 0.0;
    const int steps = 300;
    for (int i = 0; i < steps; ++i) {
        auto [img, label] = data.sample();
        (void)label;
        Tensor target({static_cast<std::size_t>(dim), 1, 1});
        for (int j = 0; j < dim; ++j)
            target[j] = img[j];
        double mse = runner.stepMse(img, target, 0.05f);
        if (i < 10)
            first += mse;
        if (i >= steps - 10)
            last += mse;
        if (i % 60 == 0)
            std::printf("  step %3d  reconstruction MSE %.5f\n", i, mse);
    }
    std::printf("mean MSE: first 10 steps %.5f -> last 10 steps "
                "%.5f\n", first / 10.0, last / 10.0);
    if (last >= first)
        fatal("autoencoder failed to reduce reconstruction error");
    std::printf("OK: unsupervised reconstruction learning works on "
                "the simulated node.\n");
    return 0;
}
