/**
 * @file
 * Compiler inspection (the paper's Figure 13 view): map a network with
 * the workload mapper, print the per-layer allocation decisions, then
 * compile a small network and disassemble one generated CompHeavy
 * program, showing the MEMTRACK / DMA / NDCONV structure.
 *
 * Run:  ./map_inspect [network-name]   (default: AlexNet)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "arch/presets.hh"
#include "compiler/codegen.hh"
#include "compiler/mapper.hh"
#include "core/logging.hh"
#include "core/table.hh"
#include "dnn/zoo.hh"

int
main(int argc, char **argv)
{
    using namespace sd;
    setVerbose(false);
    std::string name = argc > 1 ? argv[1] : "AlexNet";

    // Phase A: workload mapping on the full-size node.
    dnn::Network net = dnn::makeByName(name);
    arch::NodeConfig node = arch::singlePrecisionNode();
    compiler::Mapper mapper(net, node);
    compiler::Mapping m = mapper.map();

    std::printf("=== workload mapping for %s ===\n", name.c_str());
    Table t({"unit", "side", "min cols", "cols", "feat/tile",
             "tiles used", "array (RxCxL)", "split", "weights"});
    for (const auto &a : m.layers) {
        const dnn::Layer &l = net.layer(a.id);
        t.addRow({l.name, a.fcSide ? "Fc" : "Conv",
                  std::to_string(a.minColumns),
                  std::to_string(a.columns),
                  std::to_string(a.featuresPerTile),
                  std::to_string(a.tilesUsed) + "/" +
                      std::to_string(a.tilesTotal),
                  std::to_string(a.shape.rows) + "x" +
                      std::to_string(a.shape.cols) + "x" +
                      std::to_string(a.shape.lanes),
                  a.shape.split ? "yes" : "no",
                  a.weightsOnChip ? "on-chip" : "external"});
    }
    t.print(std::cout);
    std::printf("\n%d ConvLayer columns on %d chip(s); %d FcLayer "
                "columns; %d network copies\n\n",
                m.convColumns, m.convChips, m.fcColumns, m.copies);

    // Phase B: code generation for a compilable network, with one
    // program disassembled (compare with the paper's Figure 13).
    dnn::Network tiny = dnn::makeTinyCnn(16, 4);
    sim::MachineConfig mc;
    mc.rows = 2;
    mc.cols = static_cast<int>(tiny.numLayers());
    compiler::CompiledNetwork compiled =
        compiler::compileForMachine(tiny, mc);
    std::printf("=== generated ScaleDeep program (TinyCNN conv2, row 0)"
                " ===\n");
    for (const auto &tp : compiled.programs) {
        if (tp.col == 2 && tp.row == 0) {
            std::printf("%s", tp.program.disassemble().c_str());
            auto counts = tp.program.groupCounts();
            std::printf("\nstatic mix:");
            for (const auto &[group, count] : counts) {
                std::printf(" %s=%zu", isa::instGroupName(group),
                            count);
            }
            std::printf("\n");
        }
    }
    return 0;
}
