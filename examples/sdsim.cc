/**
 * @file
 * sdsim — command-line driver for the ScaleDeep performance simulator.
 *
 * Usage:
 *   sdsim [--net NAME | --all] [--precision sp|hp] [--minibatch N]
 *         [--csv] [--layers]
 *
 *   --net NAME     simulate one benchmark network (default AlexNet)
 *   --all          simulate the whole 11-network suite
 *   --precision    sp (default) or hp node preset
 *   --minibatch N  images per weight update (default 256)
 *   --csv          emit CSV instead of an aligned table
 *   --layers       also print the per-layer mapping/utilization detail
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "arch/presets.hh"
#include "core/logging.hh"
#include "core/table.hh"
#include "dnn/zoo.hh"
#include "sim/perf/perfsim.hh"

namespace {

using namespace sd;

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--net NAME | --all] [--precision sp|hp]"
                 " [--minibatch N] [--csv] [--layers]\n"
                 "networks:";
    for (const auto &e : dnn::benchmarkSuite())
        std::cerr << " " << e.name;
    std::cerr << "\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::vector<std::string> nets = {"AlexNet"};
    bool all = false, csv = false, layers = false;
    arch::NodeConfig node = arch::singlePrecisionNode();
    sim::perf::PerfOptions options;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("sdsim: ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--net") {
            nets = {value()};
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--precision") {
            std::string p = value();
            if (p == "sp") {
                node = arch::singlePrecisionNode();
            } else if (p == "hp") {
                node = arch::halfPrecisionNode();
            } else {
                return usage(argv[0]);
            }
        } else if (arg == "--minibatch") {
            options.minibatch = std::stoi(value());
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--layers") {
            layers = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (all) {
        nets.clear();
        for (const auto &e : dnn::benchmarkSuite())
            nets.push_back(e.name);
    }

    Table t({"network", "cols", "chips", "copies", "train img/s",
             "eval img/s", "pe util", "GFLOPs/W", "avg W"});
    std::vector<sim::perf::PerfResult> results;
    for (const std::string &name : nets) {
        dnn::Network net = dnn::makeByName(name);
        sim::perf::PerfSim sim(net, node, options);
        sim::perf::PerfResult r = sim.run();
        t.addRow({name, std::to_string(r.mapping.convColumns),
                  std::to_string(r.mapping.convChips),
                  std::to_string(r.mapping.copies),
                  fmtDouble(r.trainImagesPerSec, 0),
                  fmtDouble(r.evalImagesPerSec, 0),
                  fmtPercent(r.peUtil),
                  fmtDouble(r.gflopsPerWatt, 0),
                  fmtDouble(r.avgPower.total(), 0)});
        results.push_back(std::move(r));
    }
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    if (layers) {
        for (std::size_t n = 0; n < nets.size(); ++n) {
            std::cout << "\n" << nets[n] << " layers:\n";
            Table lt({"layer", "side", "cols", "stage kcycles",
                      "col util", "feat util", "array util"});
            for (const auto &lp : results[n].layers) {
                lt.addRow({lp.name, lp.fcSide ? "Fc" : "Conv",
                           std::to_string(lp.columns),
                           fmtDouble(lp.stageTrainCycles / 1e3, 1),
                           fmtDouble(lp.columnUtil, 2),
                           fmtDouble(lp.featureDistUtil, 2),
                           fmtDouble(lp.arrayResidueUtil, 2)});
            }
            if (csv)
                lt.printCsv(std::cout);
            else
                lt.print(std::cout);
        }
    }
    return 0;
}
