/**
 * @file
 * sdsim — command-line driver for the ScaleDeep performance simulator.
 *
 * Usage:
 *   sdsim [--net NAME | --all] [--precision sp|hp] [--minibatch N]
 *         [--csv] [--layers] [--report] [--report-batch N]
 *         [--trace FILE] [--stats-json FILE]
 *         [--jobs N] [--conv-algo NAME] [--gemm-kernel NAME]
 *         [--gemm-precision P] [--memplan MODE]
 *         [--serve] [--engines N] [--max-batch N]
 *         [--max-queue-delay MS] [--quiet]
 *
 *   --net NAME        simulate one benchmark network (default AlexNet)
 *   --all             simulate the whole 11-network suite
 *   --precision       sp (default) or hp node preset
 *   --minibatch N     images per weight update (default 256)
 *   --csv             emit CSV instead of an aligned table
 *   --layers          also print the per-layer mapping/utilization detail
 *   --report          run each network's forward pass through the
 *                     reference engine and print a per-layer roofline
 *                     (FLOPs, bytes, high-water memory, achieved
 *                     GFLOP/s with ConvAlgo attribution) plus the
 *                     end-of-run telemetry report (core/metrics.hh)
 *   --report-batch N  minibatch of the --report forward pass (default 2)
 *   --trace FILE      write a Chrome trace-event JSON timeline
 *   --stats-json FILE write structured results (full precision) as JSON
 *   --jobs N          worker threads (default: hardware concurrency, or
 *                     the SD_JOBS environment variable); results are
 *                     identical for every N
 *   --conv-algo NAME  convolution algorithm for the reference kernels
 *                     and the func probe: auto naive im2col winograd2
 *                     winograd4 (default: the SD_CONV_ALGO environment
 *                     variable, or auto)
 *   --gemm-kernel NAME GEMM dispatch level for the reference kernels:
 *                     auto avx2 generic scalar (default: the
 *                     SD_GEMM_KERNEL environment variable, or auto)
 *   --gemm-precision P GEMM arithmetic preset: sp or hp (default: the
 *                     SD_GEMM_PRECISION environment variable, or sp);
 *                     this is the host-kernel analogue of --precision,
 *                     which picks the modeled node preset
 *   --memplan MODE    activation-memory strategy for the reference
 *                     engine: off (dedicated per-layer buffers) or
 *                     share (liveness-planned arena, dnn/memplan.hh);
 *                     default: the SD_MEMPLAN environment variable, or
 *                     off. --report prints the planned vs unplanned
 *                     bytes per network either way.
 *   --replicas N      data-parallel replicas, a power of two (default:
 *                     the SD_DP_REPLICAS environment variable, or 1).
 *                     N > 1 adds the perf-sim node-scaling sweep
 *                     (sim/perf/scaling.hh) over 1..N nodes per
 *                     network — a "scaling" stats section — and sizes
 *                     the --report train probe, which steps a
 *                     DataParallelTrainer and reports per-replica /
 *                     total memory high-water and per-phase timings.
 *   --serve           run the serve probe: a burst of closed-loop
 *                     clients through the continuous-batching
 *                     InferenceServer (serve/server.hh) over TinyCnn.
 *                     Prints a latency/throughput summary, adds a
 *                     "serve" section to --stats-json, and fatally
 *                     checks the determinism contract (batched outputs
 *                     bit-identical to solo forward passes).
 *   --engines N       serve-probe engine-pool size (default: the
 *                     SD_SERVE_ENGINES environment variable, or 1)
 *   --max-batch N     serve-probe coalescing bound (default 8)
 *   --max-queue-delay MS
 *                     serve-probe queue-delay bound in milliseconds
 *                     (default 2)
 *   --quiet           suppress inform() status messages
 *
 * When --trace or --stats-json is given, sdsim additionally drives a
 * small CNN through the functional chip simulator (the "func probe") so
 * the artifacts cover all three layers — compiler, performance model
 * and functional machine. A full functional run of the benchmark
 * networks would actually compute every convolution and is infeasible;
 * the probe exercises identical machinery at toy scale.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "arch/presets.hh"
#include "compiler/pipeline.hh"
#include "core/export.hh"
#include "core/logging.hh"
#include "core/metrics.hh"
#include "core/parallel.hh"
#include "core/random.hh"
#include "core/table.hh"
#include "core/trace.hh"
#include "dnn/gemm.hh"
#include "dnn/reference.hh"
#include "dnn/roofline.hh"
#include "dnn/zoo.hh"
#include "serve/server.hh"
#include "sim/perf/export.hh"
#include "sim/perf/perfsim.hh"
#include "sim/perf/scaling.hh"
#include "train/trainer.hh"

namespace {

using namespace sd;

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--net NAME | --all] [--precision sp|hp]"
                 " [--minibatch N] [--csv] [--layers]"
                 " [--report] [--report-batch N]"
                 " [--trace FILE] [--stats-json FILE] [--jobs N]"
                 " [--conv-algo NAME] [--gemm-kernel NAME]"
                 " [--gemm-precision P] [--memplan MODE]"
                 " [--replicas N] [--serve] [--engines N]"
                 " [--max-batch N] [--max-queue-delay MS] [--quiet]\n"
                 "networks:";
    for (const auto &e : dnn::benchmarkSuite())
        std::cerr << " " << e.name;
    std::cerr << "\n";
    return 2;
}

/**
 * The functional-simulator probe: evaluate a minibatch of a tiny CNN on
 * the chip simulator so traces and stats include real machine events.
 * Returns the machine stats snapshot via the runner.
 */
void
runFuncProbe(compiler::PipelinedRunner *&runner_out,
             std::uint64_t &cycles, int &images)
{
    SD_TRACE_SCOPE(/*name=*/"sdsim.funcProbe", "host");
    // The probe cross-checks the fp32 functional machine against the
    // reference engine, so the reference must run at SP regardless of
    // the session's --gemm-precision (HP's bf16 rounding would read
    // as a spurious machine divergence).
    const dnn::GemmPrecision saved_prec = dnn::gemmPrecision();
    dnn::setGemmPrecision(dnn::GemmPrecision::Sp);
    dnn::Network net = dnn::makeTinyCnn(16, 4);
    dnn::ReferenceEngine engine(net, 3);
    sim::MachineConfig mc;
    mc.rows = 2;
    mc.cols = static_cast<int>(net.numLayers());
    static compiler::PipelinedRunner runner(net, mc);
    runner.loadWeights(engine);

    Rng rng(11);
    std::vector<dnn::Tensor> batch;
    const int n = 8;
    for (int i = 0; i < n; ++i)
        batch.push_back(dnn::Tensor::uniform({1, 16, 16}, rng, 0.0f,
                                             1.0f));
    std::vector<dnn::Tensor> outs = runner.evaluateBatch(batch);
    // Cross-check the machine outputs against one batched pass of the
    // reference engine (the golden model the simulator reproduces).
    engine.forward(dnn::Tensor::stack(batch));
    const dnn::LayerId out_id = net.outputLayer().id;
    for (int i = 0; i < n; ++i) {
        const dnn::Tensor ref =
            engine.activation(out_id).imageAt(static_cast<std::size_t>(i));
        if (outs[static_cast<std::size_t>(i)].maxAbsDiff(ref) > 1e-4f)
            fatal("sdsim: func probe image ", i,
                  " diverges from the reference engine");
    }
    dnn::setGemmPrecision(saved_prec);
    runner_out = &runner;
    cycles = runner.lastCycles();
    images = n;
}

/**
 * The --report train probe: a few data-parallel sync-SGD steps of a
 * tiny CNN at dpReplicas() (train/trainer.hh), so the telemetry report
 * covers the trainer's train.* phase metrics and the cross-engine
 * refeng.bytes_* gauges, and the per-replica / total memory high-water
 * is printed alongside the rooflines.
 */
void
runTrainProbe(bool csv)
{
    SD_TRACE_SCOPE(/*name=*/"sdsim.trainProbe", "host");
    const int replicas = train::dpReplicas();
    dnn::Network net = dnn::makeTinyCnn(16, 4);
    train::TrainerConfig cfg;
    cfg.replicas = replicas;
    cfg.reduceLeaves = std::max(8, replicas);
    train::DataParallelTrainer trainer(net, cfg, /*seed=*/7);

    const int batch_n = std::max(16, 2 * replicas);
    Rng rng(trainer.replicaStreamSeed(0));
    dnn::Tensor batch = dnn::Tensor::uniform(
        {static_cast<std::size_t>(batch_n), 1, 16, 16}, rng, 0.0f,
        1.0f);
    std::vector<int> labels(static_cast<std::size_t>(batch_n));
    for (int i = 0; i < batch_n; ++i)
        labels[static_cast<std::size_t>(i)] = i % 4;

    double loss = 0.0;
    const int steps = 2;
    for (int s = 0; s < steps; ++s)
        loss = trainer.trainStep(batch, labels, /*lr=*/0.05f);

    std::cout << "\ntrain probe (TinyCnn, " << replicas
              << " replica(s), " << trainer.reduceLeaves()
              << " leaves, batch " << batch_n << ", " << steps
              << " steps): loss " << fmtDouble(loss, 4) << "\n";
    Table tt({"replica", "high-water MB", "planned MB"});
    for (int r = 0; r < replicas; ++r) {
        const dnn::ReferenceEngine &eng = trainer.replica(r);
        tt.addRow({std::to_string(r),
                   fmtDouble(
                       static_cast<double>(eng.highWaterBytes()) / 1e6,
                       2),
                   fmtDouble(
                       static_cast<double>(eng.plannedBytes()) / 1e6,
                       2)});
    }
    if (csv)
        tt.printCsv(std::cout);
    else
        tt.print(std::cout);
    const train::StepTiming &tm = trainer.lastTiming();
    std::cout << "train probe total high-water "
              << fmtDouble(
                     static_cast<double>(trainer.totalHighWaterBytes()) /
                         1e6,
                     2)
              << " MB; last step shard " << fmtDouble(tm.shardMs, 2)
              << " ms, reduce " << fmtDouble(tm.reduceMs, 2)
              << " ms, apply " << fmtDouble(tm.applyMs, 2)
              << " ms, broadcast " << fmtDouble(tm.broadcastMs, 2)
              << " ms\n";
}

/** What the --serve probe measured, for the stats-JSON "serve"
 * section. */
struct ServeProbeStats
{
    int engines = 1;
    int maxBatch = 8;
    double maxQueueDelayMs = 2.0;
    std::uint64_t requests = 0;
    double wallMs = 0.0;
    double throughputRps = 0.0;
    double p50Ms = 0.0, p95Ms = 0.0, p99Ms = 0.0;
    double meanBatch = 0.0;
    serve::ServeCounters counters;
};

/**
 * The --serve probe: a burst of closed-loop clients through the
 * continuous-batching InferenceServer (serve/server.hh) over TinyCnn,
 * so the telemetry report and stats JSON cover the serve.* metrics.
 * Every output is checked bit-identical against a solo
 * ReferenceEngine::forward of the same image — the serving determinism
 * contract — and a mismatch is fatal.
 */
ServeProbeStats
runServeProbe(int maxBatch, double maxQueueDelayMs, bool csv)
{
    SD_TRACE_SCOPE(/*name=*/"sdsim.serveProbe", "host");
    constexpr int kClients = 4;
    constexpr int kPerClient = 16;
    dnn::Network net = dnn::makeTinyCnn(16, 4);
    serve::ServeConfig cfg;
    cfg.engines = serve::serveEngines();
    cfg.maxBatch = maxBatch;
    cfg.maxQueueDelayMs = maxQueueDelayMs;
    cfg.seed = 9;

    Rng rng(13);
    std::vector<dnn::Tensor> images;
    for (int i = 0; i < 16; ++i)
        images.push_back(dnn::Tensor::uniform({1, 16, 16}, rng, 0.0f,
                                              1.0f));

    ServeProbeStats st;
    st.engines = cfg.engines;
    st.maxBatch = cfg.maxBatch;
    st.maxQueueDelayMs = cfg.maxQueueDelayMs;

    // Each slot is written by exactly one client thread.
    const std::size_t total = kClients * kPerClient;
    std::vector<double> lats(total, 0.0);
    std::vector<dnn::Tensor> outputs(total);
    double wall_ms = 0.0;
    {
        serve::InferenceServer server(net, cfg);
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (int c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                for (int i = 0; i < kPerClient; ++i) {
                    const std::size_t slot =
                        static_cast<std::size_t>(c * kPerClient + i);
                    serve::ServeResult res =
                        server
                            .submit(images[slot % images.size()],
                                    /*deadlineMs=*/250.0)
                            .get();
                    if (res.status != serve::RequestStatus::Ok)
                        fatal("sdsim: serve probe request was not "
                              "served (status ",
                              static_cast<int>(res.status), ")");
                    lats[slot] = res.totalMs;
                    outputs[slot] = std::move(res.output);
                }
            });
        }
        for (std::thread &t : clients)
            t.join();
        wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
        st.counters = server.counters();
    }

    // The determinism contract, enforced: batched serving must be
    // bit-identical to solo forward passes.
    dnn::ReferenceEngine solo(net, cfg.seed, cfg.memMode);
    for (std::size_t slot = 0; slot < total; ++slot)
        if (solo.forward(images[slot % images.size()])
                .maxAbsDiff(outputs[slot]) != 0.0f)
            fatal("sdsim: serve probe output ", slot,
                  " diverges from the solo reference forward — the "
                  "serving determinism contract is broken");

    std::sort(lats.begin(), lats.end());
    auto pct = [&](double q) {
        const double pos = q * static_cast<double>(lats.size() - 1);
        return lats[static_cast<std::size_t>(pos + 0.5)];
    };
    st.requests = total;
    st.wallMs = wall_ms;
    st.throughputRps = static_cast<double>(total) / (wall_ms / 1000.0);
    st.p50Ms = pct(0.50);
    st.p95Ms = pct(0.95);
    st.p99Ms = pct(0.99);
    st.meanBatch = st.counters.batches == 0
        ? 0.0
        : static_cast<double>(st.counters.batchedImages) /
              static_cast<double>(st.counters.batches);

    std::cout << "\nserve probe (TinyCnn, " << st.engines
              << " engine(s), maxBatch " << st.maxBatch << ", delay "
              << fmtDouble(st.maxQueueDelayMs, 1) << " ms): "
              << st.requests << " requests, bit-identical\n";
    Table t({"req/s", "p50 ms", "p95 ms", "p99 ms", "mean batch",
             "max batch", "missed"});
    t.addRow({fmtDouble(st.throughputRps, 1), fmtDouble(st.p50Ms, 2),
              fmtDouble(st.p95Ms, 2), fmtDouble(st.p99Ms, 2),
              fmtDouble(st.meanBatch, 2),
              std::to_string(st.counters.maxBatchObserved),
              std::to_string(st.counters.deadlineMissed)});
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return st;
}

/**
 * The --report probe: one measured forward pass of @p name through the
 * reference engine at @p batch, returning the per-layer roofline.
 */
dnn::RooflineReport
runRooflineProbe(const std::string &name, int batch)
{
    SD_TRACE_SCOPE(/*name=*/"sdsim.roofline", "host");
    dnn::Network net = dnn::makeByName(name);
    dnn::ReferenceEngine engine(net, 5);
    const dnn::Layer &in = net.layers().front();
    Rng rng(17);
    dnn::Tensor input = dnn::Tensor::uniform(
        {static_cast<std::size_t>(batch),
         static_cast<std::size_t>(in.outChannels),
         static_cast<std::size_t>(in.outH),
         static_cast<std::size_t>(in.outW)},
        rng, 0.0f, 1.0f);
    engine.forward(input);
    return dnn::rooflineReport(engine, name);
}

} // namespace

int
main(int argc, char **argv)
{
    installCrashHandlers();
    std::vector<std::string> nets = {"AlexNet"};
    bool all = false, csv = false, layers = false, jobs_set = false;
    bool report = false, serve_probe = false;
    int report_batch = 2;
    int serve_max_batch = 8;
    double serve_delay_ms = 2.0;
    std::string trace_path, stats_path, precision = "sp";
    arch::NodeConfig node = arch::singlePrecisionNode();
    sim::perf::PerfOptions options;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("sdsim: ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--net") {
            nets = {value()};
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--precision") {
            precision = value();
            if (precision == "sp") {
                node = arch::singlePrecisionNode();
            } else if (precision == "hp") {
                node = arch::halfPrecisionNode();
            } else {
                return usage(argv[0]);
            }
        } else if (arg == "--minibatch") {
            options.minibatch = std::stoi(value());
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--layers") {
            layers = true;
        } else if (arg == "--report") {
            report = true;
        } else if (arg == "--report-batch") {
            report_batch = std::stoi(value());
            if (report_batch < 1)
                fatal("sdsim: --report-batch needs a positive integer");
        } else if (arg == "--trace") {
            trace_path = value();
        } else if (arg == "--stats-json") {
            stats_path = value();
        } else if (arg == "--jobs") {
            const int n = std::stoi(value());
            if (n < 1)
                fatal("sdsim: --jobs needs a positive integer");
            setJobs(n);
            jobs_set = true;
        } else if (arg == "--conv-algo") {
            const std::string v = value();
            dnn::ConvAlgo algo;
            if (!dnn::parseConvAlgo(v, algo))
                fatal("sdsim: --conv-algo ", v,
                      " is not a conv algorithm (valid: auto naive"
                      " im2col winograd2 winograd4)");
            dnn::setConvAlgo(algo);
        } else if (arg == "--gemm-kernel") {
            const std::string v = value();
            dnn::GemmKernel kernel;
            if (!dnn::parseGemmKernel(v, kernel))
                fatal("sdsim: --gemm-kernel ", v,
                      " is not a GEMM kernel (valid: auto avx2"
                      " generic scalar)");
            dnn::setGemmKernel(kernel);
        } else if (arg == "--gemm-precision") {
            const std::string v = value();
            dnn::GemmPrecision prec;
            if (!dnn::parseGemmPrecision(v, prec))
                fatal("sdsim: --gemm-precision ", v,
                      " is not a GEMM precision preset (valid: sp hp)");
            dnn::setGemmPrecision(prec);
        } else if (arg == "--memplan") {
            const std::string v = value();
            dnn::MemPlanMode mode;
            if (!dnn::parseMemPlanMode(v, mode))
                fatal("sdsim: --memplan ", v,
                      " is not a memory-planning mode (valid: off"
                      " share)");
            dnn::setMemPlanMode(mode);
        } else if (arg == "--replicas") {
            const int n = std::stoi(value());
            if (n < 1)
                fatal("sdsim: --replicas needs a positive integer");
            train::setDpReplicas(n);  // fatal unless a power of two
        } else if (arg == "--serve") {
            serve_probe = true;
        } else if (arg == "--engines") {
            const int n = std::stoi(value());
            serve::setServeEngines(n);  // fatal unless positive
        } else if (arg == "--max-batch") {
            serve_max_batch = std::stoi(value());
            if (serve_max_batch < 1)
                fatal("sdsim: --max-batch needs a positive integer");
        } else if (arg == "--max-queue-delay") {
            serve_delay_ms = std::stod(value());
            if (serve_delay_ms < 0.0)
                fatal("sdsim: --max-queue-delay needs a non-negative "
                      "number of milliseconds");
        } else if (arg == "--quiet") {
            setVerbose(false);
        } else {
            return usage(argv[0]);
        }
    }
    if (all) {
        nets.clear();
        for (const auto &e : dnn::benchmarkSuite())
            nets.push_back(e.name);
    }
    if (!jobs_set)
        setJobs(defaultJobs());

    if (!trace_path.empty() && !Tracer::global().open(trace_path))
        fatal("sdsim: cannot open trace file ", trace_path);

    Table t({"network", "cols", "chips", "copies", "train img/s",
             "eval img/s", "pe util", "GFLOPs/W", "avg W"});
    // Simulate the networks in parallel; rows are added serially in
    // suite order afterwards, so output is identical for any --jobs.
    std::vector<sim::perf::PerfResult> results(nets.size());
    parallelFor(nets.size(), [&](std::size_t i) {
        SD_TRACE_SCOPE_VAR(net_span, "sdsim.network", "host");
        if (SD_TRACE_ACTIVE())
            net_span.args().add("network", nets[i]);
        dnn::Network net = dnn::makeByName(nets[i]);
        sim::perf::PerfSim sim(net, node, options);
        results[i] = sim.run();
    });
    for (std::size_t i = 0; i < nets.size(); ++i) {
        const sim::perf::PerfResult &r = results[i];
        t.addRow({nets[i], std::to_string(r.mapping.convColumns),
                  std::to_string(r.mapping.convChips),
                  std::to_string(r.mapping.copies),
                  fmtDouble(r.trainImagesPerSec, 0),
                  fmtDouble(r.evalImagesPerSec, 0),
                  fmtPercent(r.peUtil),
                  fmtDouble(r.gflopsPerWatt, 0),
                  fmtDouble(r.avgPower.total(), 0)});
    }
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    if (layers) {
        for (std::size_t n = 0; n < nets.size(); ++n) {
            std::cout << "\n" << nets[n] << " layers:\n";
            Table lt({"layer", "side", "cols", "stage kcycles",
                      "col util", "feat util", "array util"});
            for (const auto &lp : results[n].layers) {
                lt.addRow({lp.name, lp.fcSide ? "Fc" : "Conv",
                           std::to_string(lp.columns),
                           fmtDouble(lp.stageTrainCycles / 1e3, 1),
                           fmtDouble(lp.columnUtil, 2),
                           fmtDouble(lp.featureDistUtil, 2),
                           fmtDouble(lp.arrayResidueUtil, 2)});
            }
            if (csv)
                lt.printCsv(std::cout);
            else
                lt.print(std::cout);
        }
    }

    // --replicas > 1: the node-scaling sweep, the simulator-side
    // mirror of the data-parallel trainer (companion to the fig22
    // bench). One curve per network, swept 1..replicas nodes.
    std::vector<std::vector<sim::perf::ScalingPoint>> scaling_curves;
    if (train::dpReplicas() > 1) {
        sim::perf::ScalingOptions scaling;
        scaling.maxNodes = train::dpReplicas();
        scaling_curves.resize(nets.size());
        parallelFor(nets.size(), [&](std::size_t i) {
            dnn::Network net = dnn::makeByName(nets[i]);
            scaling_curves[i] =
                sim::perf::nodeScalingSweep(net, node, options,
                                            scaling);
        });
        std::cout << "\nnode scaling (sync-SGD, total minibatch "
                  << options.minibatch << "):\n";
        Table st({"network", "nodes", "shard", "img/s", "speedup",
                  "efficiency", "reduce %"});
        for (std::size_t i = 0; i < nets.size(); ++i) {
            for (const sim::perf::ScalingPoint &p : scaling_curves[i])
                st.addRow({nets[i], std::to_string(p.nodes),
                           std::to_string(p.shardImages),
                           fmtDouble(p.imagesPerSec, 0),
                           fmtDouble(p.speedup, 2),
                           fmtDouble(p.efficiency, 2),
                           fmtPercent(p.reduceFraction)});
        }
        if (csv)
            st.printCsv(std::cout);
        else
            st.print(std::cout);
    }

    // The --report roofline probes: a measured reference-engine
    // forward pass per network. Serial — each probe's layer loop
    // parallelizes internally, and wall-time attribution would be
    // garbage with probes racing each other for cores.
    std::vector<dnn::RooflineReport> rooflines;
    if (report) {
        for (const std::string &name : nets) {
            inform("roofline probe: ", name, " forward, batch ",
                   report_batch);
            rooflines.push_back(runRooflineProbe(name, report_batch));
            std::cout << "\n" << name << " roofline (batch "
                      << report_batch << "):\n";
            Table rt = dnn::rooflineTable(rooflines.back());
            if (csv)
                rt.printCsv(std::cout);
            else
                rt.print(std::cout);
            const dnn::RooflineReport &rep = rooflines.back();
            std::cout << name << " memplan(" << rep.memPlan
                      << "): planned "
                      << fmtDouble(
                             static_cast<double>(rep.plannedBytes) / 1e6,
                             1)
                      << " MB / unplanned "
                      << fmtDouble(
                             static_cast<double>(rep.unplannedBytes) /
                                 1e6,
                             1)
                      << " MB, activation high-water "
                      << fmtDouble(
                             static_cast<double>(
                                 rep.activationHighWaterBytes) /
                                 1e6,
                             1)
                      << " MB\n";
        }
        inform("train probe: TinyCnn, ", train::dpReplicas(),
               " replica(s)");
        runTrainProbe(csv);
    }

    std::optional<ServeProbeStats> serve_stats;
    if (serve_probe) {
        inform("serve probe: TinyCnn, ", serve::serveEngines(),
               " engine(s), maxBatch ", serve_max_batch);
        serve_stats = runServeProbe(serve_max_batch, serve_delay_ms,
                                    csv);
    }

    // The func probe feeds both artifacts; run it once if either wants
    // functional-machine coverage.
    compiler::PipelinedRunner *probe = nullptr;
    std::uint64_t probe_cycles = 0;
    int probe_images = 0;
    if (!trace_path.empty() || !stats_path.empty())
        runFuncProbe(probe, probe_cycles, probe_images);

    if (!stats_path.empty()) {
        std::ofstream os(stats_path);
        if (!os)
            fatal("sdsim: cannot open stats file ", stats_path);
        JsonWriter w(os);
        w.beginObject();
        // -2: adds the "report" (roofline) and "metrics" sections.
        // -3: adds concurrency provenance (jobs/hardwareConcurrency/
        //     effectiveJobs) so CI speedup gates can skip on
        //     single-core runners.
        // -4: adds "dpReplicas" and, when --replicas > 1, the
        //     "scaling" node-sweep section.
        // -5: adds the "serve" section (continuous-batching serve
        //     probe) when --serve is given.
        w.field("schema", "scaledeep-stats-5");
        w.field("jobs", static_cast<std::int64_t>(jobs()));
        w.field("hardwareConcurrency",
                static_cast<std::int64_t>(hardwareJobs()));
        w.field("effectiveJobs",
                static_cast<std::int64_t>(
                    std::min(jobs(), hardwareJobs())));
        w.field("dpReplicas",
                static_cast<std::int64_t>(train::dpReplicas()));
        w.key("node");
        w.beginObject();
        w.field("precision", precision);
        w.field("minibatch",
                static_cast<std::int64_t>(options.minibatch));
        w.endObject();
        w.key("networks");
        w.beginArray();
        for (std::size_t n = 0; n < nets.size(); ++n)
            sim::perf::writePerfResultJson(w, nets[n], results[n]);
        w.endArray();
        if (!scaling_curves.empty()) {
            w.key("scaling");
            w.beginArray();
            for (std::size_t n = 0; n < nets.size(); ++n) {
                w.beginObject();
                w.field("network", nets[n]);
                w.key("points");
                w.beginArray();
                for (const sim::perf::ScalingPoint &p :
                     scaling_curves[n]) {
                    w.beginObject();
                    w.field("nodes",
                            static_cast<std::int64_t>(p.nodes));
                    w.field("shardImages",
                            static_cast<std::int64_t>(p.shardImages));
                    w.field("computeSeconds", p.computeSeconds);
                    w.field("allreduceSeconds", p.allreduceSeconds);
                    w.field("stepSeconds", p.stepSeconds);
                    w.field("imagesPerSec", p.imagesPerSec);
                    w.field("speedup", p.speedup);
                    w.field("efficiency", p.efficiency);
                    w.field("reduceFraction", p.reduceFraction);
                    w.endObject();
                }
                w.endArray();
                w.endObject();
            }
            w.endArray();
        }
        if (serve_stats) {
            const ServeProbeStats &s = *serve_stats;
            w.key("serve");
            w.beginObject();
            w.field("network", "TinyCnn");
            w.field("engines", static_cast<std::int64_t>(s.engines));
            w.field("maxBatch",
                    static_cast<std::int64_t>(s.maxBatch));
            w.field("maxQueueDelayMs", s.maxQueueDelayMs);
            w.field("requests",
                    static_cast<std::int64_t>(s.requests));
            w.field("wallMs", s.wallMs);
            w.field("throughputRps", s.throughputRps);
            w.field("p50Ms", s.p50Ms);
            w.field("p95Ms", s.p95Ms);
            w.field("p99Ms", s.p99Ms);
            w.field("meanBatch", s.meanBatch);
            w.key("counters");
            w.beginObject();
            w.field("admitted",
                    static_cast<std::int64_t>(s.counters.admitted));
            w.field("rejectedFull",
                    static_cast<std::int64_t>(s.counters.rejectedFull));
            w.field("rejectedShutdown",
                    static_cast<std::int64_t>(
                        s.counters.rejectedShutdown));
            w.field("completed",
                    static_cast<std::int64_t>(s.counters.completed));
            w.field("deadlineMissed",
                    static_cast<std::int64_t>(
                        s.counters.deadlineMissed));
            w.field("batches",
                    static_cast<std::int64_t>(s.counters.batches));
            w.field("batchedImages",
                    static_cast<std::int64_t>(
                        s.counters.batchedImages));
            w.field("maxBatchObserved",
                    static_cast<std::int64_t>(
                        s.counters.maxBatchObserved));
            w.endObject();
            w.endObject();
        }
        if (probe) {
            w.key("funcProbe");
            w.beginObject();
            w.field("network", "TinyCnn");
            w.field("images",
                    static_cast<std::int64_t>(probe_images));
            w.field("cycles", probe_cycles);
            w.key("machine");
            writeStatsJson(w, probe->lastStats().root);
            w.endObject();
        }
        if (!rooflines.empty()) {
            w.key("report");
            w.beginArray();
            for (const dnn::RooflineReport &rep : rooflines)
                dnn::writeRooflineJson(w, rep);
            w.endArray();
        }
        w.key("metrics");
        MetricsRegistry::global().writeJson(w);
        w.endObject();
        os << "\n";
    }

    if (report)
        MetricsRegistry::global().writeReport(std::cout);

    Tracer::global().close();
    return 0;
}
