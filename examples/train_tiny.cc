/**
 * @file
 * End-to-end training demo ("learning and evaluating deep networks"):
 * train a tiny CNN on the synthetic dataset with the reference engine,
 * then compile the trained network with the ScaleDeep compiler and
 * evaluate it on the functional chip simulator — the simulated
 * hardware must classify exactly like the software model.
 *
 * Run:  ./train_tiny
 */

#include <cstdio>
#include <vector>

#include "compiler/codegen.hh"
#include "core/logging.hh"
#include "dnn/reference.hh"
#include "dnn/zoo.hh"

int
main()
{
    using namespace sd;
    using namespace sd::dnn;
    setVerbose(false);

    const int classes = 3, image_size = 12;
    Network net = makeTinyCnn(image_size, classes);
    ReferenceEngine engine(net, /*seed=*/42);
    SyntheticDataset train_data(classes, 1, image_size, image_size, 7);

    std::printf("training %s (%llu weights) on the synthetic "
                "dataset...\n",
                net.name().c_str(),
                static_cast<unsigned long long>(net.totalWeights()));
    for (int step = 0; step < 120; ++step) {
        std::vector<Tensor> images;
        std::vector<int> labels;
        for (int i = 0; i < 8; ++i) {
            auto [img, label] = train_data.sample();
            images.push_back(std::move(img));
            labels.push_back(label);
        }
        double loss = engine.trainMinibatch(images, labels, 0.05f);
        if (step % 20 == 0)
            std::printf("  step %3d  minibatch loss %.4f\n", step, loss);
    }

    // Software accuracy on held-out samples.
    SyntheticDataset test_data(classes, 1, image_size, image_size, 99);
    std::vector<std::pair<Tensor, int>> test_set;
    int correct = 0;
    for (int i = 0; i < 60; ++i) {
        test_set.push_back(test_data.sample());
        if (engine.predict(test_set.back().first) ==
            test_set.back().second) {
            ++correct;
        }
    }
    std::printf("reference engine accuracy: %d/60 (chance would be "
                "20/60)\n", correct);

    // Compile for the functional ScaleDeep machine and re-evaluate.
    sim::MachineConfig mc;
    mc.rows = 2;
    mc.cols = static_cast<int>(net.numLayers());
    compiler::FuncRunner runner(net, mc);
    runner.loadWeights(engine);

    int agree = 0;
    std::uint64_t cycles = 0;
    for (auto &[img, label] : test_set) {
        sim::RunResult res;
        Tensor out = runner.evaluate(img, &res);
        cycles += res.cycles;
        int pred = 0;
        for (std::size_t i = 1; i < out.size(); ++i)
            if (out[i] > out[pred])
                pred = static_cast<int>(i);
        if (pred == engine.predict(img))
            ++agree;
    }
    std::printf("functional ScaleDeep simulation agrees with the "
                "reference on %d/60 images (%.0f cycles/image, %llu "
                "MACs/image)\n",
                agree, static_cast<double>(cycles) / 60.0,
                static_cast<unsigned long long>(net.totalMacs()));
    if (agree != 60)
        fatal("simulated hardware diverged from the golden model");
    std::printf("OK: compiled ScaleDeep programs reproduce the "
                "trained network exactly.\n");
    return 0;
}
