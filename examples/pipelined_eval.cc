/**
 * @file
 * Nested pipelining demo (paper Section 3.2.3 / Figure 10): stream
 * minibatches of increasing depth through the functional chip
 * simulator and watch the per-image cost fall from the full pipeline
 * latency toward the slowest stage's initiation interval — while
 * every output stays bit-identical to the reference engine.
 *
 * Run:  ./pipelined_eval
 */

#include <cstdio>
#include <vector>

#include "compiler/pipeline.hh"
#include "core/logging.hh"
#include "core/random.hh"
#include "dnn/reference.hh"
#include "dnn/zoo.hh"

int
main()
{
    using namespace sd;
    using namespace sd::dnn;
    setVerbose(false);

    Network net = makeTinyCnn(16, 4);
    ReferenceEngine engine(net, 3);
    sim::MachineConfig mc;
    mc.rows = 2;
    mc.cols = static_cast<int>(net.numLayers());
    compiler::PipelinedRunner runner(net, mc);
    runner.loadWeights(engine);

    Rng rng(11);
    std::printf("%-6s %-12s %-14s %-10s\n", "batch", "total cycles",
                "cycles/image", "correct");
    double single = 0.0;
    for (int batch : {1, 2, 4, 8, 16, 32}) {
        std::vector<Tensor> images;
        for (int i = 0; i < batch; ++i)
            images.push_back(Tensor::uniform({1, 16, 16}, rng, 0.0f,
                                             1.0f));
        std::vector<Tensor> outputs = runner.evaluateBatch(images);
        int ok = 0;
        for (int i = 0; i < batch; ++i) {
            if (outputs[i].maxAbsDiff(engine.forward(images[i])) <
                1e-4f) {
                ++ok;
            }
        }
        double per_image =
            static_cast<double>(runner.lastCycles()) / batch;
        if (batch == 1)
            single = per_image;
        std::printf("%-6d %-12llu %-14.1f %d/%d\n", batch,
                    static_cast<unsigned long long>(
                        runner.lastCycles()),
                    per_image, ok, batch);
        if (ok != batch)
            fatal("pipelined outputs diverged from the reference");
    }
    std::printf("\nper-image cost fell to %.0f%% of the single-image "
                "latency: columns overlap successive images, throttled "
                "only by the generation trackers (the paper's "
                "inter-layer pipeline).\n",
                100.0 * (static_cast<double>(runner.lastCycles()) / 32.0)
                    / single);
    return 0;
}
