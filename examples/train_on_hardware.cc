/**
 * @file
 * Training entirely through the simulated ScaleDeep hardware: every
 * FP, BP and WG step executes as compiled ScaleDeep programs on the
 * functional chip simulator (trackers, DMA, 2D-array instructions);
 * the host only computes the softmax loss gradient and applies the
 * SGD update. Reports phase cycle counts per iteration.
 *
 * Run:  ./train_on_hardware
 */

#include <cstdio>
#include <vector>

#include "compiler/trainer.hh"
#include "core/logging.hh"
#include "dnn/reference.hh"
#include "dnn/zoo.hh"

int
main()
{
    using namespace sd;
    using namespace sd::dnn;
    setVerbose(false);

    const int classes = 3, size = 10;
    Network net = makeTinyCnnAvg(size, classes);
    sim::MachineConfig mc;
    mc.rows = 2;
    mc.cols = static_cast<int>(net.numLayers());
    compiler::TrainRunner runner(net, mc, /*seed=*/21);

    std::printf("training %s on the functional ScaleDeep simulator "
                "(%zu FP + %zu BP + %zu WG tile programs)...\n",
                net.name().c_str(),
                runner.compiled().fp.programs.size(),
                runner.compiled().bpPrograms.size(),
                runner.compiled().wgPrograms.size());

    SyntheticDataset data(classes, 1, size, size, 33);
    const int batches = 50;
    for (int b = 0; b < batches; ++b) {
        std::vector<Tensor> images;
        std::vector<int> labels;
        for (int i = 0; i < 4; ++i) {
            auto [img, label] = data.sample();
            images.push_back(std::move(img));
            labels.push_back(label);
        }
        double loss = runner.stepMinibatch(images, labels, 0.2f);
        if (b % 10 == 0) {
            std::printf("  batch %2d  loss %.4f  (last image: %llu FP "
                        "+ %llu BP/WG cycles)\n",
                        b, loss,
                        static_cast<unsigned long long>(
                            runner.lastFpCycles()),
                        static_cast<unsigned long long>(
                            runner.lastBpWgCycles()));
        }
    }

    SyntheticDataset test(classes, 1, size, size, 77);
    int correct = 0;
    const int n = 30;
    for (int i = 0; i < n; ++i) {
        auto [img, label] = test.sample();
        if (runner.predict(img) == label)
            ++correct;
    }
    std::printf("hardware-trained accuracy: %d/%d (chance %d/%d)\n",
                correct, n, n / classes, n);
    if (correct <= n / 2)
        fatal("hardware training failed to learn");
    std::printf("OK: the simulated ScaleDeep node learned the task "
                "end to end.\n");
    return 0;
}
